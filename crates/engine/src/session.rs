//! Deterministic multi-application scheduling over one shared cluster.
//!
//! A [`Turnstile`] admits N application driver threads against a single
//! [`Cluster`] and interleaves their work at *stage and job boundaries*:
//! exactly one app holds the turn at any moment, so every engine mutation
//! (plan growth, stage commit, controller hook) happens in one globally
//! serial, deterministic order. Real threads provide the programming model
//! (each app is an ordinary driver function); the turnstile provides the
//! schedule.
//!
//! # Determinism
//!
//! The schedule is a pure function of the [`SchedulerConfig`] and the
//! simulated clock — never of host thread timing:
//!
//! - [`SchedPolicy::RoundRobin`] cycles through a seeded permutation of the
//!   admission order (the same seeded-coin discipline as
//!   [`crate::fault::FaultPlan`]).
//! - [`SchedPolicy::FairShare`] hands the turn to the live app with the
//!   least accumulated simulated stage time, ties toward the smallest
//!   [`AppId`].
//!
//! The turn is granted by policy among *live* apps regardless of which
//! threads the OS happens to have scheduled; a granted app that has not yet
//! reached its wait point simply picks the turn up when it arrives. Because
//! only the turn holder executes, traces and metrics are byte-identical
//! across `worker_threads`, host load and repeated runs — and with one app
//! the turnstile degenerates to the legacy serial path exactly.

use crate::cluster::Cluster;
use crate::config::{SchedPolicy, SchedulerConfig};
use blaze_common::error::Result;
use blaze_common::ids::{AppId, RddId};
use blaze_common::rng::derive_seed;
use blaze_common::SimDuration;
use blaze_dataflow::runner::JobRunner;
use blaze_dataflow::{Block, Plan};
use parking_lot::{Condvar, Mutex, RwLock};
use std::sync::Arc;

/// Which app may currently mutate the shared engine, and the accounting the
/// next grant decision needs. Guarded by [`Turnstile::state`].
struct TurnstileState {
    /// The app currently holding the turn, if any.
    holder: Option<AppId>,
    /// Liveness per app index; an app leaves the rotation when it finishes.
    live: Vec<bool>,
    /// Accumulated simulated stage time per app (fair-share signal).
    charged: Vec<SimDuration>,
    /// Seeded permutation of the admission order (round-robin rotation).
    order: Vec<u32>,
    /// Next position in `order` to consider for a round-robin grant.
    cursor: usize,
}

impl TurnstileState {
    /// Picks the next turn holder, or `None` when every app has finished.
    /// Pure function of policy state — host thread timing never enters.
    fn grant_next(&mut self, policy: SchedPolicy) -> Option<AppId> {
        let n = self.live.len();
        if !self.live.iter().any(|&l| l) {
            return None;
        }
        let app = match policy {
            SchedPolicy::RoundRobin => loop {
                let candidate = self.order[self.cursor % n];
                self.cursor = (self.cursor + 1) % n;
                if self.live[candidate as usize] {
                    break AppId(candidate);
                }
            },
            SchedPolicy::FairShare => {
                let mut best: Option<u32> = None;
                for (i, &is_live) in self.live.iter().enumerate() {
                    if !is_live {
                        continue;
                    }
                    // Strict `<` keeps ties on the smallest app id.
                    let better = best.is_none_or(|b| self.charged[i] < self.charged[b as usize]);
                    if better {
                        best = Some(i as u32);
                    }
                }
                // audit: allow(unwrap) guarded above: at least one app is live
                AppId(best.expect("a live app exists"))
            }
        };
        self.holder = Some(app);
        Some(app)
    }
}

/// The multi-app scheduler: a turn-taking gate over one shared [`Cluster`].
///
/// Construct with [`Turnstile::new`], then give each application driver an
/// [`AppSession`] (via [`Turnstile::session`]) to back its
/// [`blaze_dataflow::Context`]. Each driver thread must call
/// [`Turnstile::start`] before touching the plan and
/// [`Turnstile::finish`] when done (use a guard so panics release the turn).
pub struct Turnstile {
    state: Mutex<TurnstileState>,
    turn: Condvar,
    policy: SchedPolicy,
}

impl Turnstile {
    /// Creates a turnstile admitting `apps` applications (`app-0` ..
    /// `app-(apps-1)`), interleaved per `config`.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is zero (admission is audited upstream, BA010).
    #[must_use]
    pub fn new(config: SchedulerConfig, apps: usize) -> Arc<Self> {
        assert!(apps > 0, "turnstile requires at least one application");
        // Seeded Fisher-Yates over the admission order: the rotation order
        // is a pure function of the scheduler seed.
        let mut order: Vec<u32> = (0..apps as u32).collect();
        for i in (1..apps).rev() {
            let j = (derive_seed(config.seed, i as u64) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        Arc::new(Self {
            state: Mutex::new(TurnstileState {
                holder: None,
                live: vec![true; apps],
                charged: vec![SimDuration::ZERO; apps],
                order,
                cursor: 0,
            }),
            turn: Condvar::new(),
            policy: config.policy,
        })
    }

    /// Binds one application to this turnstile and the shared cluster,
    /// producing the [`JobRunner`] its driver's `Context` should use.
    #[must_use]
    pub fn session(self: &Arc<Self>, app: AppId, cluster: Cluster) -> AppSession {
        AppSession { turnstile: Arc::clone(self), cluster, app }
    }

    /// Blocks until `app` is granted its first turn. Every driver thread
    /// must call this before any plan construction or job submission.
    pub fn start(&self, app: AppId) {
        let mut st = self.state.lock();
        if st.holder.is_none() {
            st.grant_next(self.policy);
        }
        while st.holder != Some(app) {
            st = self.turn.wait(st);
        }
    }

    /// Releases the turn at a stage/job boundary and blocks until the
    /// scheduler hands it back. With a single live app this returns
    /// immediately — the legacy serial path in disguise.
    pub fn yield_point(&self, app: AppId) {
        let mut st = self.state.lock();
        debug_assert_eq!(st.holder, Some(app), "yield without holding the turn");
        st.holder = None;
        st.grant_next(self.policy);
        if st.holder != Some(app) {
            self.turn.notify_all();
            while st.holder != Some(app) {
                st = self.turn.wait(st);
            }
        }
    }

    /// Adds simulated stage time to `app`'s fair-share account.
    pub fn charge(&self, app: AppId, delta: SimDuration) {
        self.state.lock().charged[app.raw() as usize] += delta;
    }

    /// Marks `app` finished: it leaves the rotation and the turn moves on.
    /// Idempotent, so a completion guard may call it after a normal finish.
    pub fn finish(&self, app: AppId) {
        let mut st = self.state.lock();
        st.live[app.raw() as usize] = false;
        if st.holder == Some(app) {
            st.holder = None;
        }
        if st.holder.is_none() {
            st.grant_next(self.policy);
        }
        self.turn.notify_all();
    }
}

/// One application's handle onto the shared cluster: a [`JobRunner`] that
/// splits each job into stages and passes through the [`Turnstile`] between
/// them, so co-running apps interleave deterministically.
///
/// The plan read-guard is dropped before every yield — another app may need
/// `plan.write()` (its driver grows the same shared [`Plan`]) while this
/// one waits, and holding the guard across the wait would deadlock.
#[derive(Clone)]
pub struct AppSession {
    turnstile: Arc<Turnstile>,
    cluster: Cluster,
    app: AppId,
}

impl AppSession {
    /// The application this session schedules for.
    #[must_use]
    pub fn app(&self) -> AppId {
        self.app
    }

    /// The shared cluster backing every session of this turnstile.
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Declares this app's driver started (see [`Turnstile::start`]).
    pub fn start(&self) {
        self.turnstile.start(self.app);
    }

    /// Declares this app finished (see [`Turnstile::finish`]).
    pub fn finish(&self) {
        self.turnstile.finish(self.app);
    }
}

impl JobRunner for AppSession {
    fn run_job(&self, plan: &Arc<RwLock<Plan>>, target: RddId) -> Result<Vec<Block>> {
        // The turn is already held: drivers run only while holding it, and
        // the loop below re-acquires it after every yield. Each stage takes
        // a fresh read-guard (the plan is append-only, so the job's view is
        // stable) and drops it before yielding.
        let mut ticket = {
            let plan = plan.read();
            self.cluster.begin_job_for(self.app, &plan, target)?
        };
        let mut charged = SimDuration::ZERO;
        while !ticket.done() {
            {
                let plan = plan.read();
                self.cluster.run_next_stage_for(&mut ticket, &plan)?;
            }
            let total = ticket.sim_cost();
            self.turnstile.charge(self.app, total.saturating_sub(charged));
            charged = total;
            self.turnstile.yield_point(self.app);
        }
        let blocks = self.cluster.finish_job_for(ticket)?;
        self.turnstile.yield_point(self.app);
        Ok(blocks)
    }

    fn on_unpersist(&self, rdd: RddId) {
        // Runs under the turn (drivers only execute while holding it); the
        // removal is attributed to this app.
        self.cluster.unpersist_for(self.app, rdd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SchedPolicy, SchedulerConfig};

    fn grant_sequence(t: &Turnstile, n: usize) -> Vec<u32> {
        let mut st = t.state.lock();
        (0..n)
            .map(|_| {
                st.holder = None;
                st.grant_next(t.policy).unwrap().raw()
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_a_seeded_permutation() {
        let t = Turnstile::new(SchedulerConfig { policy: SchedPolicy::RoundRobin, seed: 7 }, 3);
        let seq = grant_sequence(&t, 6);
        // One full rotation repeats exactly.
        assert_eq!(seq[0..3], seq[3..6]);
        let mut first: Vec<u32> = seq[0..3].to_vec();
        first.sort_unstable();
        assert_eq!(first, vec![0, 1, 2]);
    }

    #[test]
    fn round_robin_order_is_a_pure_function_of_the_seed() {
        let a = Turnstile::new(SchedulerConfig { policy: SchedPolicy::RoundRobin, seed: 9 }, 4);
        let b = Turnstile::new(SchedulerConfig { policy: SchedPolicy::RoundRobin, seed: 9 }, 4);
        assert_eq!(grant_sequence(&a, 8), grant_sequence(&b, 8));
    }

    #[test]
    fn round_robin_skips_finished_apps() {
        let t = Turnstile::new(SchedulerConfig::default(), 3);
        t.state.lock().live[1] = false;
        let seq = grant_sequence(&t, 4);
        assert!(!seq.contains(&1));
    }

    #[test]
    fn fair_share_prefers_the_least_charged_live_app() {
        let t = Turnstile::new(SchedulerConfig { policy: SchedPolicy::FairShare, seed: 0 }, 3);
        t.charge(AppId(0), SimDuration::from_millis(50));
        t.charge(AppId(2), SimDuration::from_millis(10));
        assert_eq!(grant_sequence(&t, 1), vec![1]);
        t.charge(AppId(1), SimDuration::from_millis(100));
        assert_eq!(grant_sequence(&t, 1), vec![2]);
    }

    #[test]
    fn fair_share_breaks_ties_toward_the_smallest_app_id() {
        let t = Turnstile::new(SchedulerConfig { policy: SchedPolicy::FairShare, seed: 0 }, 3);
        assert_eq!(grant_sequence(&t, 1), vec![0]);
    }

    #[test]
    fn finish_releases_a_held_turn() {
        let t = Turnstile::new(SchedulerConfig::default(), 2);
        let first = AppId(t.state.lock().order[0]);
        t.start(first);
        assert_eq!(t.state.lock().holder, Some(first));
        t.finish(first);
        let holder = t.state.lock().holder.unwrap();
        assert_ne!(holder, first);
    }
}
