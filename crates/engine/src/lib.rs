//! The simulated-cluster execution engine of the Blaze reproduction.
//!
//! This crate executes [`blaze_dataflow`] plans on a configurable cluster of
//! simulated executors. Data processing is *real* (tasks materialize real
//! partitions, cache misses re-run real lineage); time and placement are
//! *simulated* through a deterministic hardware model, which is what lets a
//! laptop reproduce the shape of the paper's 11-node EC2 evaluation.
//!
//! Key pieces:
//!
//! - [`config::ClusterConfig`] / [`config::HardwareModel`] — the topology and
//!   throughput constants of the simulated cluster.
//! - [`cluster::Cluster`] — the engine; implements
//!   [`blaze_dataflow::runner::JobRunner`].
//! - [`controller::CacheController`] — the unified decision surface for
//!   caching, eviction and recovery; implemented by every baseline policy in
//!   `blaze-policies` and by Blaze itself in `blaze-core`.
//! - [`metrics::Metrics`] — the measurements behind every evaluation figure.
//!
//! # Example
//!
//! ```
//! use blaze_engine::{Cluster, ClusterConfig, NoCacheController};
//! use blaze_dataflow::Context;
//!
//! let cluster = Cluster::new(ClusterConfig::default(), Box::new(NoCacheController)).unwrap();
//! let ctx = Context::new(cluster.clone());
//! let data = ctx.range(0..1000, 8);
//! assert_eq!(data.count().unwrap(), 1000);
//! assert!(cluster.metrics().completion_time.as_secs_f64() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod controller;
pub mod fault;
pub mod metrics;
pub mod session;
pub mod shuffle;
pub mod storage;
pub mod tracing;

pub use cluster::Cluster;
pub use config::{
    ClusterConfig, ClusterConfigBuilder, HardwareModel, SchedPolicy, SchedulerConfig,
};
pub use controller::{
    Admission, BlockInfo, CacheController, CtrlCtx, DegradationNote, NoCacheController,
    PartitionEvent, StateCommand, StoreTier, VictimAction,
};
pub use fault::{ExecutorCrash, FaultCause, FaultPlan};
pub use metrics::{
    AppMetrics, Metrics, RecoveryMetrics, SpeculationMetrics, TaskCharge, TaskTrace,
};
pub use session::{AppSession, Turnstile};
pub use tracing::{CacheDecision, CacheRecord, TraceEvent, TraceLog};
