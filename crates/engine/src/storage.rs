//! Per-executor block stores.
//!
//! Each executor owns a bounded memory store and a disk store — both are
//! [`BlockStore`]s (paper
//! Fig. 2). Stores only hold data and account bytes; *which* blocks move
//! where is decided by the installed cache controller, and the engine
//! charges the corresponding simulated I/O time.

use blaze_common::ids::{BlockId, RddId};
use blaze_common::rng::hash_coords;
use blaze_common::{fxhash::FxHashMap, ByteSize};
use blaze_dataflow::Block;
use std::collections::BTreeSet;

/// A block at rest in a store, with the metadata needed to price moving it.
#[derive(Debug, Clone)]
pub struct StoredBlock {
    /// The materialized data.
    pub block: Block,
    /// Logical (deserialized) size; the basis for disk/serialization costs.
    pub logical_bytes: ByteSize,
    /// Bytes charged against this store's capacity (may be smaller than
    /// `logical_bytes` in serialized-in-memory stores such as Alluxio).
    pub stored_bytes: ByteSize,
    /// Serialization cost factor of the element type.
    pub ser_factor: f64,
    /// True when this memory-resident block is individually held in
    /// serialized form (the decision layer's s-state, `ser_tier`):
    /// `stored_bytes` is the footprint-scaled size and every access pays a
    /// deserialization. Distinct from store-global serialized-in-memory
    /// modes (Alluxio), which keep this `false` and shrink footprints via
    /// the controller's `memory_footprint_factor`. Always `false` on disk.
    pub serialized: bool,
    /// Integrity checksum stamped when the block was written to the disk
    /// tier (see [`spill_checksum`]). `None` for memory-resident blocks and
    /// whenever spill-corruption injection is off — reads only verify
    /// stamped blocks, keeping the fault-free path zero-cost.
    pub checksum: Option<u64>,
}

/// The FxHash-based integrity checksum stamped on every block written to
/// the disk tier while spill-corruption injection is on.
///
/// Blocks are type-erased at this layer, so the checksum covers the block's
/// identity and pricing metadata — a simulated content hash: any seeded
/// bit-flip ([`crate::fault::FaultPlan::corruption_bit`]) is detected on
/// the next read exactly as a real content checksum would detect real disk
/// corruption.
pub fn spill_checksum(id: BlockId, logical_bytes: ByteSize, ser_factor: f64) -> u64 {
    hash_coords(
        0x5_b111_c4ec,
        &[
            u64::from(id.rdd.raw()),
            u64::from(id.partition),
            logical_bytes.as_bytes(),
            ser_factor.to_bits(),
        ],
    )
}

/// A bounded store of blocks (used for both the memory and disk tiers).
#[derive(Debug, Default)]
pub struct BlockStore {
    blocks: FxHashMap<BlockId, StoredBlock>,
    /// Resident partitions per RDD (sorted): makes [`Self::remove_rdd`]
    /// O(blocks of that RDD) instead of a scan of the whole store, with a
    /// deterministic (id-ordered) removal order.
    by_rdd: FxHashMap<RddId, BTreeSet<u32>>,
    used: ByteSize,
    capacity: ByteSize,
}

impl BlockStore {
    /// Creates a store with the given capacity.
    pub fn new(capacity: ByteSize) -> Self {
        Self {
            blocks: FxHashMap::default(),
            by_rdd: FxHashMap::default(),
            used: ByteSize::ZERO,
            capacity,
        }
    }

    /// Returns the capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Returns the bytes currently charged.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Returns the free space.
    pub fn free(&self) -> ByteSize {
        self.capacity.saturating_sub(self.used)
    }

    /// Returns true if a block with `id` is present.
    pub fn contains(&self, id: BlockId) -> bool {
        self.blocks.contains_key(&id)
    }

    /// Returns true if `bytes` more would fit right now.
    pub fn fits(&self, bytes: ByteSize) -> bool {
        self.used + bytes <= self.capacity
    }

    /// Looks up a block.
    pub fn get(&self, id: BlockId) -> Option<&StoredBlock> {
        self.blocks.get(&id)
    }

    /// Inserts a block; returns false (and stores nothing) if it would
    /// exceed capacity. Re-inserting an existing id replaces it.
    pub fn insert(&mut self, id: BlockId, stored: StoredBlock) -> bool {
        if let Some(old) = self.blocks.get(&id) {
            let new_used = self.used - old.stored_bytes + stored.stored_bytes;
            if new_used > self.capacity {
                return false;
            }
            self.used = new_used;
            self.blocks.insert(id, stored);
            return true;
        }
        if !self.fits(stored.stored_bytes) {
            return false;
        }
        self.used += stored.stored_bytes;
        self.blocks.insert(id, stored);
        self.by_rdd.entry(id.rdd).or_default().insert(id.partition);
        true
    }

    /// Removes a block, returning it if present.
    pub fn remove(&mut self, id: BlockId) -> Option<StoredBlock> {
        let removed = self.blocks.remove(&id);
        if let Some(sb) = &removed {
            self.used -= sb.stored_bytes;
            if let Some(parts) = self.by_rdd.get_mut(&id.rdd) {
                parts.remove(&id.partition);
                if parts.is_empty() {
                    self.by_rdd.remove(&id.rdd);
                }
            }
        }
        removed
    }

    /// Removes every block of the given RDD, returning the removed entries
    /// in ascending partition order. Served from the per-RDD index, so the
    /// cost scales with the blocks of that RDD, not the store size.
    pub fn remove_rdd(&mut self, rdd: RddId) -> Vec<(BlockId, StoredBlock)> {
        let Some(parts) = self.by_rdd.remove(&rdd) else { return Vec::new() };
        parts
            .into_iter()
            .filter_map(|part| {
                let id = BlockId::new(rdd, part);
                let sb = self.blocks.remove(&id)?;
                self.used -= sb.stored_bytes;
                Some((id, sb))
            })
            .collect()
    }

    /// Iterates over resident blocks.
    pub fn iter(&self) -> impl Iterator<Item = (&BlockId, &StoredBlock)> {
        self.blocks.iter()
    }

    /// True when the incremental `used` counter equals the sum of the
    /// resident blocks' stored bytes AND the per-RDD index exactly mirrors
    /// the resident block set (shadow accounting; checked by the engine
    /// after every commit phase in debug builds).
    pub fn accounting_consistent(&self) -> bool {
        if self.used != self.blocks.values().map(|sb| sb.stored_bytes).sum() {
            return false;
        }
        let indexed: usize = self.by_rdd.values().map(BTreeSet::len).sum();
        indexed == self.blocks.len()
            && self.by_rdd.iter().all(|(rdd, parts)| {
                parts.iter().all(|&p| self.blocks.contains_key(&BlockId::new(*rdd, p)))
            })
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns true if the store holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaze_common::ids::RddId;

    fn sb(kib: u64) -> StoredBlock {
        StoredBlock {
            block: Block::from_vec(vec![0u8; (kib * 1024) as usize]),
            logical_bytes: ByteSize::from_kib(kib),
            stored_bytes: ByteSize::from_kib(kib),
            ser_factor: 1.0,
            serialized: false,
            checksum: None,
        }
    }

    fn id(rdd: u32, part: u32) -> BlockId {
        BlockId::new(RddId(rdd), part)
    }

    #[test]
    fn inserts_until_capacity() {
        let mut s = BlockStore::new(ByteSize::from_kib(10));
        assert!(s.insert(id(1, 0), sb(4)));
        assert!(s.insert(id(1, 1), sb(4)));
        assert!(!s.insert(id(1, 2), sb(4)), "third 4KiB must not fit in 10KiB");
        assert_eq!(s.used(), ByteSize::from_kib(8));
        assert_eq!(s.free(), ByteSize::from_kib(2));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn remove_releases_space() {
        let mut s = BlockStore::new(ByteSize::from_kib(8));
        assert!(s.insert(id(1, 0), sb(8)));
        assert!(!s.fits(ByteSize::from_kib(1)));
        assert!(s.remove(id(1, 0)).is_some());
        assert_eq!(s.used(), ByteSize::ZERO);
        assert!(s.remove(id(1, 0)).is_none());
    }

    #[test]
    fn reinsert_replaces_and_reaccounts() {
        let mut s = BlockStore::new(ByteSize::from_kib(10));
        assert!(s.insert(id(1, 0), sb(4)));
        assert!(s.insert(id(1, 0), sb(6)));
        assert_eq!(s.used(), ByteSize::from_kib(6));
        // Replacement that would overflow is rejected and keeps the old one.
        assert!(!s.insert(id(1, 0), sb(11)));
        assert_eq!(s.used(), ByteSize::from_kib(6));
        assert!(s.contains(id(1, 0)));
    }

    #[test]
    fn accounting_stays_consistent_through_churn() {
        let mut s = BlockStore::new(ByteSize::from_kib(10));
        assert!(s.accounting_consistent());
        s.insert(id(1, 0), sb(4));
        s.insert(id(1, 1), sb(4));
        s.insert(id(1, 0), sb(2)); // replacement re-accounts
        s.remove(id(1, 1));
        assert!(s.accounting_consistent());
        assert_eq!(s.used(), ByteSize::from_kib(2));
    }

    #[test]
    fn remove_rdd_clears_all_partitions() {
        let mut s = BlockStore::new(ByteSize::from_kib(100));
        s.insert(id(1, 0), sb(1));
        s.insert(id(1, 1), sb(1));
        s.insert(id(2, 0), sb(1));
        let removed = s.remove_rdd(RddId(1));
        assert_eq!(removed.len(), 2);
        assert_eq!(s.len(), 1);
        assert!(s.contains(id(2, 0)));
        assert_eq!(s.used(), ByteSize::from_kib(1));
        assert!(s.accounting_consistent());
    }

    #[test]
    fn remove_rdd_returns_partitions_in_ascending_order() {
        let mut s = BlockStore::new(ByteSize::from_kib(100));
        for part in [7u32, 2, 9, 0, 4] {
            s.insert(id(3, part), sb(1));
        }
        let removed = s.remove_rdd(RddId(3));
        let parts: Vec<u32> = removed.iter().map(|(b, _)| b.partition).collect();
        assert_eq!(parts, vec![0, 2, 4, 7, 9]);
        assert!(s.remove_rdd(RddId(3)).is_empty(), "second removal finds nothing");
        assert!(s.is_empty());
        assert!(s.accounting_consistent());
    }

    #[test]
    fn spill_checksum_is_deterministic_and_metadata_sensitive() {
        let a = spill_checksum(id(1, 0), ByteSize::from_kib(4), 1.0);
        assert_eq!(a, spill_checksum(id(1, 0), ByteSize::from_kib(4), 1.0));
        assert_ne!(a, spill_checksum(id(1, 1), ByteSize::from_kib(4), 1.0));
        assert_ne!(a, spill_checksum(id(2, 0), ByteSize::from_kib(4), 1.0));
        assert_ne!(a, spill_checksum(id(1, 0), ByteSize::from_kib(8), 1.0));
        assert_ne!(a, spill_checksum(id(1, 0), ByteSize::from_kib(4), 2.0));
        // A single flipped bit is always detected.
        for bit in 0..64 {
            assert_ne!(a, a ^ (1u64 << bit));
        }
    }

    #[test]
    fn rdd_index_survives_replacement_and_mixed_churn() {
        let mut s = BlockStore::new(ByteSize::from_kib(100));
        s.insert(id(1, 0), sb(4));
        s.insert(id(1, 0), sb(2)); // replacement keeps one index entry
        s.insert(id(1, 1), sb(1));
        s.remove(id(1, 1));
        s.insert(id(2, 0), sb(1));
        assert!(s.accounting_consistent());
        assert_eq!(s.remove_rdd(RddId(1)).len(), 1);
        assert!(s.accounting_consistent());
        assert_eq!(s.len(), 1);
    }
}
