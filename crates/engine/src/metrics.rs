//! Execution metrics.
//!
//! Everything the paper's evaluation figures need falls out of this module:
//! accumulated task-time breakdowns (Figs. 4 and 10), eviction counts and
//! per-executor eviction volumes (Figs. 3 and 12a), per-iteration
//! recomputation time (Figs. 5 and 12b), disk-resident cache volume (§7.2
//! inline statistics) and the application completion time (Fig. 9).

use blaze_common::fxhash::FxHashMap;
use blaze_common::ids::{AppId, ExecutorId, JobId, RddId};
use blaze_common::{ByteSize, SimDuration, SimTime};

/// One executed task, for timeline reconstruction and skew analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTrace {
    /// Application the task belonged to (`app-0` outside multi-app runs).
    pub app: AppId,
    /// Job the task belonged to. Job ids are numbered per application, so
    /// only the `(app, job)` pair is unique within a run.
    pub job: JobId,
    /// The RDD the task's stage materialized.
    pub stage_output: RddId,
    /// Partition index the task computed.
    pub partition: u32,
    /// Executor the task ran on.
    pub executor: ExecutorId,
    /// Slot within the executor.
    pub slot: u32,
    /// Simulated start time.
    pub start: SimTime,
    /// Simulated end time.
    pub end: SimTime,
    /// The task's charge breakdown.
    pub charge: TaskCharge,
}

impl TaskTrace {
    /// Simulated duration of the task.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Time charged to one task (or migration), split by category.
///
/// The paper's Fig. 4/10 breakdown distinguishes "Disk I/O for Caching"
/// (spills, disk reads of cached data, and their (de)serialization) from
/// "Computation+Shuffle"; we keep the finer split and aggregate for display.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TaskCharge {
    /// Operator compute time (first-time computation).
    pub compute: SimDuration,
    /// Re-execution of previously materialized partitions (cache-miss
    /// recovery by recomputation).
    pub recompute: SimDuration,
    /// Shuffle write (bucketing + serialization + shuffle-file write).
    pub shuffle_write: SimDuration,
    /// Shuffle fetch (network + deserialization).
    pub shuffle_fetch: SimDuration,
    /// Writing cached data to disk (serialization + disk write).
    pub disk_cache_write: SimDuration,
    /// Reading cached data back from disk (disk read + deserialization).
    pub disk_cache_read: SimDuration,
    /// Extra in-memory (de)serialization imposed by an external store
    /// (the Alluxio path, §7.1).
    pub external_store_io: SimDuration,
    /// Slot time burned by failed task attempts (fault injection): the
    /// attempts ran and died, so the slot was occupied, but no category
    /// above received their work. Zero when no faults are injected.
    pub fault_wasted: SimDuration,
    /// Extra slot time a straggling task spent over its fair duration
    /// (the injected slowdown, fault injection). Zero without stragglers.
    pub straggler_delay: SimDuration,
    /// Backoff waits charged by failed shuffle-fetch attempts (fault
    /// injection). Zero without fetch failures.
    pub fetch_backoff: SimDuration,
}

impl TaskCharge {
    /// Total simulated task duration.
    pub fn total(&self) -> SimDuration {
        self.compute
            + self.recompute
            + self.shuffle_write
            + self.shuffle_fetch
            + self.disk_cache_write
            + self.disk_cache_read
            + self.external_store_io
            + self.fault_wasted
            + self.straggler_delay
            + self.fetch_backoff
    }

    /// The "Disk I/O for Caching" component of the paper's breakdown.
    pub fn disk_io_for_caching(&self) -> SimDuration {
        self.disk_cache_write + self.disk_cache_read
    }

    /// The "Computation+Shuffle" component of the paper's breakdown.
    pub fn computation_and_shuffle(&self) -> SimDuration {
        self.compute + self.recompute + self.shuffle_write + self.shuffle_fetch
    }

    /// Adds another charge into this one.
    pub fn merge(&mut self, other: &TaskCharge) {
        self.compute += other.compute;
        self.recompute += other.recompute;
        self.shuffle_write += other.shuffle_write;
        self.shuffle_fetch += other.shuffle_fetch;
        self.disk_cache_write += other.disk_cache_write;
        self.disk_cache_read += other.disk_cache_read;
        self.external_store_io += other.external_store_io;
        self.fault_wasted += other.fault_wasted;
        self.straggler_delay += other.straggler_delay;
        self.fetch_backoff += other.fetch_backoff;
    }
}

/// Speculative-execution attribution under straggler injection (see
/// [`crate::fault::FaultPlan::straggler_rate`]). All zero on a
/// straggler-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpeculationMetrics {
    /// Tasks the fault plan marked as stragglers.
    pub stragglers: u64,
    /// Total injected slowdown charged to committed straggling attempts
    /// (matches the sum of `TaskCharge::straggler_delay`).
    pub straggler_delay: SimDuration,
    /// Speculative copies launched because a straggler blew the stage's
    /// quantile deadline.
    pub launched: u64,
    /// Speculative copies that finished before the original attempt and
    /// were committed in its place.
    pub wins: u64,
    /// Slot time burned by whichever attempt lost the race (the original
    /// after a win, the copy after a loss).
    pub wasted: SimDuration,
}

/// Recovery-work attribution under fault injection (see
/// [`crate::fault::FaultPlan`]). Every counter is zero on a failure-free
/// run, and — like all of [`Metrics`] — bit-identical across repeated runs
/// and worker-thread counts for the same fault schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryMetrics {
    /// Transient task attempts that failed and were retried.
    pub task_retries: u64,
    /// In-flight task attempts lost to an executor crash and rescheduled.
    pub tasks_lost_to_crash: u64,
    /// Executor crashes that fired (scheduled crashes reached by the
    /// simulated clock, plus explicit `fail_executor` calls).
    pub executor_crashes: u64,
    /// Cached blocks dropped by executor loss.
    pub blocks_lost: u64,
    /// Logical bytes of cached data dropped by executor loss.
    pub bytes_lost: ByteSize,
    /// Lost blocks later re-produced through lineage.
    pub blocks_recovered: u64,
    /// Shuffle map outputs dropped (crash without an external shuffle
    /// service, or seeded map-output loss).
    pub map_outputs_lost: u64,
    /// Lost map outputs later regenerated through lineage.
    pub map_outputs_recovered: u64,
    /// Map stages re-run because their registered shuffle outputs were
    /// lost (Spark's fetch-failure stage resubmission).
    pub stages_resubmitted: u64,
    /// Spilled blocks whose checksum failed verification on read; the block
    /// was dropped from the disk tier and recomputed through lineage.
    pub spills_quarantined: u64,
    /// Shuffle-fetch attempts that failed and were retried after a backoff.
    pub fetch_retries: u64,
    /// Total backoff time charged by failed fetch attempts (matches the sum
    /// of `TaskCharge::fetch_backoff`).
    pub fetch_backoff_time: SimDuration,
    /// Fetches whose whole retry budget failed, escalating to regenerating
    /// the parent stage's map outputs through lineage.
    pub fetch_escalations: u64,
    /// Slot time burned by attempts that failed (transient or crash-lost).
    pub wasted_time: SimDuration,
    /// Simulated time spent replaying lineage to re-produce lost data
    /// (recompute edges below a lost block, plus map-output regeneration).
    pub lineage_replay_time: SimDuration,
    /// Total recovery time (wasted + replay) attributed per `(app, job)`.
    /// Job ids are per-application counters, so keying by bare [`JobId`]
    /// would collide as soon as two applications run concurrently.
    pub recovery_time_by_job: FxHashMap<(AppId, JobId), SimDuration>,
}

impl RecoveryMetrics {
    /// Total simulated time the run spent on failure recovery (wasted
    /// attempt time, lineage replay, and fetch backoff waits).
    pub fn total_recovery_time(&self) -> SimDuration {
        self.wasted_time + self.lineage_replay_time + self.fetch_backoff_time
    }

    /// Recovery time per `(app, job)`, sorted by key.
    pub fn recovery_by_job(&self) -> Vec<((AppId, JobId), SimDuration)> {
        let mut v: Vec<_> = self.recovery_time_by_job.iter().map(|(&k, &t)| (k, t)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Records recovery time attributed to `job` of `app`.
    pub fn record_job_recovery(&mut self, app: AppId, job: JobId, time: SimDuration) {
        if time > SimDuration::ZERO {
            *self.recovery_time_by_job.entry((app, job)).or_default() += time;
        }
    }
}

/// Per-application attribution of shared-cluster activity. All zero outside
/// multi-app sessions except the `app-0` entry, which then mirrors the
/// single application's share of the global counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AppMetrics {
    /// Jobs this application submitted.
    pub jobs: u64,
    /// Memory hits served to this application's tasks.
    pub mem_hits: u64,
    /// Disk hits served to this application's tasks.
    pub disk_hits: u64,
    /// Memory hits this application served from a block *produced by
    /// another application* (the shared-cache dividend: zero under
    /// isolated per-app partitions).
    pub cross_mem_hits: u64,
    /// Disk hits served from another application's block.
    pub cross_disk_hits: u64,
    /// Memory evictions of blocks this application produced.
    pub evictions: u64,
    /// Unpersists (automatic or user) of blocks this application produced.
    pub unpersists: u64,
    /// Recomputation time charged to this application's jobs.
    pub recompute_time: SimDuration,
    /// Completion time of this application's last job.
    pub completion_time: SimTime,
}

/// Aggregated metrics of one application run.
///
/// `PartialEq` is derived so determinism tests can assert that two runs
/// (e.g. with different `worker_threads`) are bit-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Sum of all task charges (the "accumulated task execution time").
    pub accumulated: TaskCharge,
    /// Number of tasks executed.
    pub tasks: u64,
    /// Number of jobs executed.
    pub jobs: u64,
    /// Number of stages executed (excluding skipped).
    pub stages_run: u64,
    /// Number of stages skipped because shuffle outputs already existed.
    pub stages_skipped: u64,
    /// Evictions from memory (both discard and spill), total.
    pub evictions: u64,
    /// Evictions that discarded data (m -> u).
    pub evictions_discard: u64,
    /// Evictions that spilled data to disk (m -> d).
    pub evictions_to_disk: u64,
    /// Bytes evicted from memory to disk (spills), per executor. Together
    /// with the discarded map this is Fig. 3's per-executor eviction
    /// volume, split so disk-pressure reporting can tell a spill (costs
    /// disk I/O now) from a discard (costs recomputation later).
    pub spilled_bytes_per_executor: FxHashMap<ExecutorId, ByteSize>,
    /// Bytes evicted from memory and discarded outright, per executor.
    pub discarded_bytes_per_executor: FxHashMap<ExecutorId, ByteSize>,
    /// Cumulative bytes of cache data written to disk.
    pub disk_bytes_written: ByteSize,
    /// Peak bytes of cache data resident on disk.
    pub disk_bytes_peak: ByteSize,
    /// Sum of disk-resident cache bytes sampled at stage completions
    /// (divide by `disk_samples` for the paper's "average data on disk").
    pub disk_bytes_sampled_sum: ByteSize,
    /// Number of disk-residency samples taken.
    pub disk_samples: u64,
    /// Peak bytes resident in memory stores (cluster-wide).
    pub memory_bytes_peak: ByteSize,
    /// Recomputation time per (app, job, RDD) (Figs. 5 and 12b). Job ids
    /// are per-application, so the app id is part of the key.
    pub recompute_by_job_rdd: FxHashMap<(AppId, JobId, RddId), SimDuration>,
    /// Cache hits served from memory.
    pub mem_hits: u64,
    /// Memory hits served from a serialized-in-memory block (the decision
    /// layer's s-state, `ser_tier`; a subset of `mem_hits`). Always zero
    /// when the serialized tier is disabled.
    pub ser_mem_hits: u64,
    /// Serialized-memory hits attributed per `(app, job)` (empty whenever
    /// `ser_mem_hits` is zero).
    pub ser_mem_hits_by_job: FxHashMap<(AppId, JobId), u64>,
    /// In-place serialized-tier transitions applied (m -> s serializations,
    /// s -> m deserializations and d -> s promotions together). Always zero
    /// when the serialized tier is disabled.
    pub ser_transitions: u64,
    /// Cache hits served from disk.
    pub disk_hits: u64,
    /// Lookups of previously materialized blocks that found nothing and
    /// fell back to recomputation.
    pub recompute_misses: u64,
    /// Distinct warning-severity preflight diagnostics observed across the
    /// run (one per (code, dataset) pair; see `blaze-audit`).
    pub audit_warnings: u64,
    /// Recovery-work attribution under fault injection (all zero on a
    /// failure-free run).
    pub recovery: RecoveryMetrics,
    /// Straggler and speculative-execution attribution (all zero without
    /// injected stragglers).
    pub speculation: SpeculationMetrics,
    /// Speculative copies launched, attributed per `(app, job)` (empty
    /// whenever `speculation.launched` is zero).
    pub speculation_by_job: FxHashMap<(AppId, JobId), u64>,
    /// Per-application attribution of the shared cluster's activity. Keyed
    /// by application; single-app runs have exactly the `app-0` entry.
    pub per_app: FxHashMap<AppId, AppMetrics>,
    /// The simulated application completion time (Fig. 9's ACT).
    pub completion_time: SimTime,
    /// Every executed task, in execution order (timeline reconstruction).
    pub task_traces: Vec<TaskTrace>,
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed task.
    pub fn record_task(&mut self, charge: &TaskCharge) {
        self.accumulated.merge(charge);
        self.tasks += 1;
    }

    /// Records a task's timeline entry.
    pub fn record_trace(&mut self, trace: TaskTrace) {
        self.task_traces.push(trace);
    }

    /// Per-executor busy time (sum of task durations).
    pub fn busy_time_per_executor(&self) -> FxHashMap<ExecutorId, SimDuration> {
        let mut out: FxHashMap<ExecutorId, SimDuration> = FxHashMap::default();
        for t in &self.task_traces {
            *out.entry(t.executor).or_default() += t.duration();
        }
        out
    }

    /// The `n` longest tasks (stragglers), longest first. Ties are ordered
    /// by (app, job, stage output, partition) ascending — a total order, so the
    /// answer does not depend on trace recording order. Only the selected
    /// `n` traces are copied out, not the whole trace vector.
    pub fn slowest_tasks(&self, n: usize) -> Vec<TaskTrace> {
        let key = |t: &TaskTrace| {
            (std::cmp::Reverse(t.duration()), t.app, t.job, t.stage_output, t.partition)
        };
        let mut idx: Vec<usize> = (0..self.task_traces.len()).collect();
        if n == 0 {
            return Vec::new();
        }
        if n < idx.len() {
            idx.select_nth_unstable_by_key(n - 1, |&i| key(&self.task_traces[i]));
            idx.truncate(n);
        }
        idx.sort_unstable_by_key(|&i| key(&self.task_traces[i]));
        idx.into_iter().map(|i| self.task_traces[i]).collect()
    }

    /// Records an eviction of `bytes` from `exec` (spilled or discarded).
    pub fn record_eviction(&mut self, exec: ExecutorId, bytes: ByteSize, to_disk: bool) {
        self.evictions += 1;
        if to_disk {
            self.evictions_to_disk += 1;
            *self.spilled_bytes_per_executor.entry(exec).or_default() += bytes;
        } else {
            self.evictions_discard += 1;
            *self.discarded_bytes_per_executor.entry(exec).or_default() += bytes;
        }
    }

    /// Total bytes evicted from memory per executor, spills and discards
    /// combined (the quantity Fig. 3 plots).
    pub fn evicted_bytes_per_executor(&self) -> FxHashMap<ExecutorId, ByteSize> {
        let mut out = self.spilled_bytes_per_executor.clone();
        for (&e, &b) in &self.discarded_bytes_per_executor {
            *out.entry(e).or_default() += b;
        }
        out
    }

    /// Records recomputation time attributed to `rdd` during `job` of `app`.
    pub fn record_recompute(&mut self, app: AppId, job: JobId, rdd: RddId, time: SimDuration) {
        *self.recompute_by_job_rdd.entry((app, job, rdd)).or_default() += time;
        self.app_metrics(app).recompute_time += time;
    }

    /// The per-application attribution entry for `app`, created on first use.
    pub fn app_metrics(&mut self, app: AppId) -> &mut AppMetrics {
        self.per_app.entry(app).or_default()
    }

    /// Per-application attribution entries, sorted by application id.
    pub fn per_app_sorted(&self) -> Vec<(AppId, AppMetrics)> {
        let mut v: Vec<_> = self.per_app.iter().map(|(&a, &m)| (a, m)).collect();
        v.sort_by_key(|(a, _)| *a);
        v
    }

    /// Samples the current disk residency (called at stage completion).
    pub fn sample_disk_residency(&mut self, resident: ByteSize) {
        self.disk_bytes_peak = self.disk_bytes_peak.max(resident);
        self.disk_bytes_sampled_sum += resident;
        self.disk_samples += 1;
    }

    /// The average disk-resident cache volume over sampled points.
    pub fn disk_bytes_avg(&self) -> ByteSize {
        self.disk_bytes_sampled_sum
            .as_bytes()
            .checked_div(self.disk_samples)
            .map_or(ByteSize::ZERO, ByteSize::from_bytes)
    }

    /// Total recomputation time across the whole run.
    pub fn total_recompute_time(&self) -> SimDuration {
        self.recompute_by_job_rdd.values().copied().sum()
    }

    /// Recomputation time aggregated per `(app, job)`, sorted by key.
    pub fn recompute_by_job(&self) -> Vec<((AppId, JobId), SimDuration)> {
        let mut per_job: FxHashMap<(AppId, JobId), SimDuration> = FxHashMap::default();
        for (&(app, job, _), &t) in &self.recompute_by_job_rdd {
            *per_job.entry((app, job)).or_default() += t;
        }
        let mut v: Vec<_> = per_job.into_iter().collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// The RDD with the highest recomputation time within `job` of `app`,
    /// if any. Ties break toward the smallest `RddId` — a total order, so
    /// the answer never depends on hash-map iteration order.
    pub fn top_recompute_rdd(&self, app: AppId, job: JobId) -> Option<(RddId, SimDuration)> {
        self.recompute_by_job_rdd
            .iter()
            .filter(|((a, j, _), _)| *a == app && *j == job)
            .map(|((_, _, r), t)| (*r, *t))
            .max_by_key(|&(r, t)| (t, std::cmp::Reverse(r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn charge(compute_ms: u64, disk_ms: u64) -> TaskCharge {
        TaskCharge {
            compute: SimDuration::from_millis(compute_ms),
            disk_cache_write: SimDuration::from_millis(disk_ms),
            ..Default::default()
        }
    }

    #[test]
    fn charges_aggregate_by_category() {
        let mut m = Metrics::new();
        m.record_task(&charge(10, 5));
        m.record_task(&charge(20, 0));
        assert_eq!(m.tasks, 2);
        assert_eq!(m.accumulated.computation_and_shuffle(), SimDuration::from_millis(30));
        assert_eq!(m.accumulated.disk_io_for_caching(), SimDuration::from_millis(5));
        assert_eq!(m.accumulated.total(), SimDuration::from_millis(35));
    }

    #[test]
    fn evictions_split_by_kind_and_executor() {
        // Regression: spill and discard volumes used to be lumped into one
        // per-executor map, so disk-pressure reporting could not tell a
        // 4 MiB spill from a 4 MiB discard.
        let mut m = Metrics::new();
        m.record_eviction(ExecutorId(0), ByteSize::from_mib(4), true);
        m.record_eviction(ExecutorId(0), ByteSize::from_mib(2), false);
        m.record_eviction(ExecutorId(1), ByteSize::from_mib(1), false);
        assert_eq!(m.evictions, 3);
        assert_eq!(m.evictions_to_disk, 1);
        assert_eq!(m.evictions_discard, 2);
        assert_eq!(m.spilled_bytes_per_executor[&ExecutorId(0)], ByteSize::from_mib(4));
        assert_eq!(m.discarded_bytes_per_executor[&ExecutorId(0)], ByteSize::from_mib(2));
        assert!(!m.spilled_bytes_per_executor.contains_key(&ExecutorId(1)));
        assert_eq!(m.discarded_bytes_per_executor[&ExecutorId(1)], ByteSize::from_mib(1));
        // The combined view still reports Fig. 3's total volume.
        let combined = m.evicted_bytes_per_executor();
        assert_eq!(combined[&ExecutorId(0)], ByteSize::from_mib(6));
        assert_eq!(combined[&ExecutorId(1)], ByteSize::from_mib(1));
    }

    #[test]
    fn recompute_attribution_per_job_and_rdd() {
        let a = AppId(0);
        let mut m = Metrics::new();
        m.record_recompute(a, JobId(1), RddId(7), SimDuration::from_secs(2));
        m.record_recompute(a, JobId(1), RddId(9), SimDuration::from_secs(5));
        m.record_recompute(a, JobId(2), RddId(9), SimDuration::from_secs(1));
        assert_eq!(m.total_recompute_time(), SimDuration::from_secs(8));
        assert_eq!(
            m.recompute_by_job(),
            vec![
                ((a, JobId(1)), SimDuration::from_secs(7)),
                ((a, JobId(2)), SimDuration::from_secs(1)),
            ]
        );
        assert_eq!(m.top_recompute_rdd(a, JobId(1)), Some((RddId(9), SimDuration::from_secs(5))));
        assert_eq!(m.top_recompute_rdd(a, JobId(3)), None);
        assert_eq!(m.per_app[&a].recompute_time, SimDuration::from_secs(8));
    }

    #[test]
    fn job_keys_do_not_collide_across_apps() {
        // Two applications both submit job-1; per-job attribution must keep
        // them apart (job ids are per-application counters).
        let mut m = Metrics::new();
        m.record_recompute(AppId(0), JobId(1), RddId(7), SimDuration::from_secs(2));
        m.record_recompute(AppId(1), JobId(1), RddId(7), SimDuration::from_secs(5));
        assert_eq!(
            m.recompute_by_job(),
            vec![
                ((AppId(0), JobId(1)), SimDuration::from_secs(2)),
                ((AppId(1), JobId(1)), SimDuration::from_secs(5)),
            ]
        );
        assert_eq!(
            m.top_recompute_rdd(AppId(1), JobId(1)),
            Some((RddId(7), SimDuration::from_secs(5)))
        );
        let mut r = RecoveryMetrics::default();
        r.record_job_recovery(AppId(0), JobId(0), SimDuration::from_secs(1));
        r.record_job_recovery(AppId(1), JobId(0), SimDuration::from_secs(3));
        assert_eq!(
            r.recovery_by_job(),
            vec![
                ((AppId(0), JobId(0)), SimDuration::from_secs(1)),
                ((AppId(1), JobId(0)), SimDuration::from_secs(3)),
            ]
        );
    }

    #[test]
    fn disk_residency_sampling() {
        let mut m = Metrics::new();
        m.sample_disk_residency(ByteSize::from_mib(10));
        m.sample_disk_residency(ByteSize::from_mib(30));
        assert_eq!(m.disk_bytes_peak, ByteSize::from_mib(30));
        assert_eq!(m.disk_bytes_avg(), ByteSize::from_mib(20));
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new();
        assert_eq!(m.disk_bytes_avg(), ByteSize::ZERO);
        assert_eq!(m.total_recompute_time(), SimDuration::ZERO);
        assert!(m.recompute_by_job().is_empty());
        assert_eq!(m.recovery, RecoveryMetrics::default());
        assert_eq!(m.recovery.total_recovery_time(), SimDuration::ZERO);
    }

    #[test]
    fn recovery_time_aggregates_per_job() {
        let a = AppId(0);
        let mut r = RecoveryMetrics::default();
        r.record_job_recovery(a, JobId(2), SimDuration::from_secs(1));
        r.record_job_recovery(a, JobId(0), SimDuration::from_secs(2));
        r.record_job_recovery(a, JobId(2), SimDuration::from_secs(3));
        r.record_job_recovery(a, JobId(1), SimDuration::ZERO); // no-op
        assert_eq!(
            r.recovery_by_job(),
            vec![
                ((a, JobId(0)), SimDuration::from_secs(2)),
                ((a, JobId(2)), SimDuration::from_secs(4))
            ]
        );
        r.wasted_time = SimDuration::from_secs(1);
        r.lineage_replay_time = SimDuration::from_secs(2);
        assert_eq!(r.total_recovery_time(), SimDuration::from_secs(3));
    }

    #[test]
    fn top_recompute_rdd_breaks_ties_by_smallest_rdd_id() {
        // Regression: ties used to be broken by FxHashMap iteration order,
        // which is a function of the hash — not of anything meaningful.
        // With many equal-time RDDs the winner must be the smallest id,
        // whatever order the entries were recorded in.
        let a = AppId(0);
        let t = SimDuration::from_secs(3);
        let mut forward = Metrics::new();
        for r in 1..=16 {
            forward.record_recompute(a, JobId(0), RddId(r), t);
        }
        let mut backward = Metrics::new();
        for r in (1..=16).rev() {
            backward.record_recompute(a, JobId(0), RddId(r), t);
        }
        assert_eq!(forward.top_recompute_rdd(a, JobId(0)), Some((RddId(1), t)));
        assert_eq!(backward.top_recompute_rdd(a, JobId(0)), Some((RddId(1), t)));
        // A strictly larger time still wins regardless of id.
        forward.record_recompute(a, JobId(0), RddId(9), SimDuration::from_secs(1));
        assert_eq!(
            forward.top_recompute_rdd(a, JobId(0)),
            Some((RddId(9), SimDuration::from_secs(4)))
        );
    }

    fn trace_at(job: u32, stage: u32, part: u32, dur_ms: u64) -> TaskTrace {
        TaskTrace {
            app: AppId(0),
            job: JobId(job),
            stage_output: RddId(stage),
            partition: part,
            executor: ExecutorId(0),
            slot: 0,
            start: SimTime::ZERO,
            end: SimTime::ZERO + SimDuration::from_millis(dur_ms),
            charge: TaskCharge::default(),
        }
    }

    #[test]
    fn slowest_tasks_orders_ties_by_stage_and_task_id() {
        // Regression: equal-duration tasks used to surface in push order.
        // The canonical order is duration desc, then (job, stage, partition)
        // ascending — independent of recording order.
        let mut m = Metrics::new();
        for t in [
            trace_at(1, 9, 1, 10),
            trace_at(0, 7, 3, 10),
            trace_at(1, 9, 0, 10),
            trace_at(0, 7, 2, 20),
        ] {
            m.record_trace(t);
        }
        let top = m.slowest_tasks(3);
        let key: Vec<(u32, u32, u32)> =
            top.iter().map(|t| (t.job.raw(), t.stage_output.raw(), t.partition)).collect();
        assert_eq!(key, vec![(0, 7, 2), (0, 7, 3), (1, 9, 0)]);
        // n larger than the trace count returns everything, still ordered.
        assert_eq!(m.slowest_tasks(10).len(), 4);
        assert!(m.slowest_tasks(0).is_empty());
    }

    #[test]
    fn fault_wasted_counts_into_the_total_charge() {
        let mut c = charge(10, 0);
        c.fault_wasted = SimDuration::from_millis(7);
        assert_eq!(c.total(), SimDuration::from_millis(17));
        // But not into either paper-breakdown component.
        assert_eq!(c.computation_and_shuffle(), SimDuration::from_millis(10));
        assert_eq!(c.disk_io_for_caching(), SimDuration::ZERO);
    }

    #[test]
    fn degradation_charges_count_into_the_total_but_not_the_breakdown() {
        let mut c = charge(10, 0);
        c.straggler_delay = SimDuration::from_millis(30);
        c.fetch_backoff = SimDuration::from_millis(5);
        assert_eq!(c.total(), SimDuration::from_millis(45));
        // Like fault_wasted: slot time, not useful work in either paper
        // breakdown component.
        assert_eq!(c.computation_and_shuffle(), SimDuration::from_millis(10));
        assert_eq!(c.disk_io_for_caching(), SimDuration::ZERO);
        let mut sum = TaskCharge::default();
        sum.merge(&c);
        sum.merge(&c);
        assert_eq!(sum.straggler_delay, SimDuration::from_millis(60));
        assert_eq!(sum.fetch_backoff, SimDuration::from_millis(10));
    }

    #[test]
    fn fetch_backoff_counts_into_total_recovery_time() {
        let r = RecoveryMetrics {
            wasted_time: SimDuration::from_secs(1),
            lineage_replay_time: SimDuration::from_secs(2),
            fetch_backoff_time: SimDuration::from_secs(4),
            ..Default::default()
        };
        assert_eq!(r.total_recovery_time(), SimDuration::from_secs(7));
    }

    #[test]
    fn speculation_metrics_default_to_zero() {
        let m = Metrics::new();
        assert_eq!(m.speculation, SpeculationMetrics::default());
        assert_eq!(m.speculation.stragglers, 0);
        assert_eq!(m.speculation.wasted, SimDuration::ZERO);
    }
}
