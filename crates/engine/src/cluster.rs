//! The simulated-cluster execution engine.
//!
//! Workloads *really execute* on this engine: tasks materialize real data,
//! shuffles really bucket records, and a cache miss really re-runs lineage.
//! What is simulated is time and placement: every compute, serialization,
//! disk and network charge is a deterministic function of measured element
//! counts and byte sizes, composed per executor slot on a simulated clock.
//!
//! Execution model per job (paper §2.1–§2.3):
//!
//! 1. The job's lineage is split into stages ([`blaze_dataflow::planner`]).
//! 2. Map stages whose shuffle outputs already exist are *skipped* (Spark's
//!    skipped stages) — this is what makes later iterations cheap when
//!    intermediate data is cached or shuffle files persist.
//! 3. Tasks are placed with cache locality, run on executor slots, and every
//!    materialized partition flows through the installed
//!    [`CacheController`]'s unified decision hooks.
//!
//! # Threading model: plan / execute / commit
//!
//! Stage tasks are independent in the RDD model, so each stage runs as a
//! three-phase pipeline (see DESIGN.md "Execution threading model"):
//!
//! - **Plan** (serial, partition order): locality placement via
//!   [`ClusterState::pick_executor`] against the pre-stage state.
//! - **Execute** (parallel): tasks run on a scoped worker pool sized by
//!   [`ClusterConfig::worker_threads`]. Every task reads a *frozen
//!   snapshot* of the stores ([`ExecView`]) and records its
//!   [`TaskCharge`] plus a log of cache-relevant [`TaskEvent`]s instead of
//!   mutating shared state. The snapshot semantics apply at every thread
//!   count, including 1.
//! - **Commit** (serial, partition-index order): slot assignment on the
//!   simulated clocks, replay of the event logs through the
//!   [`CacheController`] hooks (admissions, evictions, promotions, shuffle
//!   registration) and metrics updates.
//!
//! Because every controller decision and every simulated-time composition
//! happens in the deterministic commit phase, metrics, ACT and policy
//! behaviour are bit-identical for any `worker_threads` value; real
//! parallelism only changes wall-clock time.

use crate::config::ClusterConfig;
use crate::controller::{
    Admission, BlockInfo, CacheController, CtrlCtx, PartitionEvent, StateCommand, StoreTier,
    VictimAction,
};
use crate::fault::{FaultCause, SPECULATION_QUANTILE, SPECULATION_SLACK};
use crate::metrics::{Metrics, TaskCharge};
use crate::shuffle::{ShuffleId, ShuffleStore};
use crate::storage::{spill_checksum, BlockStore, StoredBlock};
use crate::tracing::{CacheDecision, CacheRecord, TraceEvent, TraceLog};
use blaze_common::error::{BlazeError, Result};
use blaze_common::fxhash::{FxHashMap, FxHashSet};
use blaze_common::ids::{AppId, BlockId, ExecutorId, JobId, RddId};
use blaze_common::{ByteSize, SimDuration, SimTime};
use blaze_dataflow::plan::{Compute, Dep};
use blaze_dataflow::runner::JobRunner;
use blaze_dataflow::{Block, Plan};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A handle to the simulated cluster; implements [`JobRunner`] so it can back
/// a [`blaze_dataflow::Context`]. Cloning shares the same cluster state.
#[derive(Clone)]
pub struct Cluster {
    state: Arc<Mutex<ClusterState>>,
}

impl Cluster {
    /// Creates a cluster with the given configuration and cache controller.
    ///
    /// # Errors
    ///
    /// Returns a configuration error if `config` is invalid.
    pub fn new(config: ClusterConfig, controller: Box<dyn CacheController>) -> Result<Self> {
        config.validate()?;
        Ok(Self { state: Arc::new(Mutex::new(ClusterState::new(config, controller))) })
    }

    /// Returns a snapshot of the run metrics so far.
    pub fn metrics(&self) -> Metrics {
        self.state.lock().metrics.clone()
    }

    /// Returns the installed controller's name.
    pub fn controller_name(&self) -> String {
        self.state.lock().controller.name()
    }

    /// Returns the cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.state.lock().config.clone()
    }

    /// Returns a snapshot of the structured event trace, or `None` when
    /// [`ClusterConfig::tracing`] is off.
    pub fn trace(&self) -> Option<TraceLog> {
        self.state.lock().trace.clone()
    }

    /// Current bytes resident in each executor's memory store.
    pub fn memory_used(&self) -> Vec<ByteSize> {
        self.state.lock().stores.mem.iter().map(BlockStore::used).collect()
    }

    /// Current bytes resident in each executor's disk store.
    pub fn disk_used(&self) -> Vec<ByteSize> {
        self.state.lock().stores.disk.iter().map(BlockStore::used).collect()
    }

    /// Simulates the loss of an executor: its memory and disk stores are
    /// cleared (all cached blocks gone) and the controller is notified of
    /// every eviction, exactly as if the machine had been replaced.
    /// Lineage recovers everything on subsequent access, and the shuffle
    /// store survives unless the configured [`crate::fault::FaultPlan`]
    /// disables the external shuffle service. Lost blocks and the work to
    /// re-produce them are attributed in [`crate::metrics::RecoveryMetrics`].
    ///
    /// # Errors
    ///
    /// Fails if `exec` is out of range.
    pub fn fail_executor(&self, exec: ExecutorId) -> Result<()> {
        let mut st = self.state.lock();
        let e = exec.raw() as usize;
        if e >= st.config.executors {
            return Err(BlazeError::Config(format!("no such executor: {exec}")));
        }
        let at = st.clock_floor;
        st.wipe_executor(e, at);
        Ok(())
    }

    /// Admits one job on behalf of `app` and returns its ticket. Session
    /// layer only: the legacy [`JobRunner`] path stays on `run_job`.
    pub(crate) fn begin_job_for(
        &self,
        app: AppId,
        plan: &Plan,
        target: RddId,
    ) -> Result<JobTicket> {
        self.state.lock().begin_job(app, plan, target)
    }

    /// Runs the ticket's next stage. The lock is held only for the stage,
    /// so a session scheduler can interleave stages of different apps.
    pub(crate) fn run_next_stage_for(&self, ticket: &mut JobTicket, plan: &Plan) -> Result<()> {
        self.state.lock().run_next_stage(ticket, plan)
    }

    /// Completes a ticket whose stages have all run.
    pub(crate) fn finish_job_for(&self, ticket: JobTicket) -> Result<Vec<Block>> {
        self.state.lock().finish_job(ticket)
    }

    /// Unpersist on behalf of a specific app (owner attribution).
    pub(crate) fn unpersist_for(&self, app: AppId, rdd: RddId) {
        let mut st = self.state.lock();
        st.current_app = app;
        st.user_unpersist(rdd);
    }
}

impl JobRunner for Cluster {
    fn run_job(&self, plan: &Arc<RwLock<Plan>>, target: RddId) -> Result<Vec<Block>> {
        let plan = plan.read();
        self.state.lock().run_job(&plan, target)
    }

    fn on_unpersist(&self, rdd: RddId) {
        self.state.lock().user_unpersist(rdd);
    }
}

/// The block-residency state of the cluster: everything a task needs to
/// *read* to resolve hits and recompute lineage. Read-shared (immutably) by
/// the execute phase; mutated only by the serial plan/commit phases.
struct Stores {
    mem: Vec<BlockStore>,
    disk: Vec<BlockStore>,
    shuffle: ShuffleStore,
    /// Last executor that produced/cached each block (locality + remote reads).
    block_home: FxHashMap<BlockId, ExecutorId>,
    /// Blocks materialized at least once (recomputation detection).
    materialized_once: FxHashSet<BlockId>,
    /// Cached blocks destroyed by an executor loss and not yet re-produced.
    /// Purely attribution state: work done to re-produce a member is
    /// recovery work ([`crate::metrics::RecoveryMetrics`]). Always empty
    /// on a failure-free run.
    lost_blocks: FxHashSet<BlockId>,
}

struct ClusterState {
    config: ClusterConfig,
    controller: Box<dyn CacheController>,
    stores: Stores,
    /// Per-executor, per-slot simulated clocks.
    slots: Vec<Vec<SimTime>>,
    metrics: Metrics,
    /// Per-application job counters: each admitted app numbers its own
    /// jobs from zero (like a `SparkContext` does), so all per-job
    /// accounting downstream is keyed by `(AppId, JobId)`.
    job_counters: FxHashMap<AppId, u32>,
    /// The application the engine is currently executing on behalf of.
    /// Always `app-0` on the legacy single-app path; the multi-app
    /// session layer sets it at every job/stage/unpersist entry point
    /// (all of which run under the scheduler turnstile, so the field is
    /// never observed concurrently).
    current_app: AppId,
    /// First application that materialized each block, for cross-app
    /// hit/eviction attribution against the shared stores.
    block_app: FxHashMap<BlockId, AppId>,
    /// Simulated time at which the next job may start.
    clock_floor: SimTime,
    /// Every action target submitted so far (preflight audit context).
    job_targets: Vec<RddId>,
    /// Warning diagnostics already counted, per (code, dataset).
    seen_audit: FxHashSet<(blaze_audit::DiagCode, Option<RddId>)>,
    /// Index of the next scheduled crash in `config.fault.crashes` (they
    /// are validated to be time-ordered and fire exactly once).
    next_crash: usize,
    /// Per-block spill sequence numbers for the corruption coin stream
    /// ([`crate::fault::FaultPlan::spill_corruption_rate`]); only populated
    /// while corruption injection is on, so a respilled block draws a
    /// fresh coin. Bumped exclusively in the serial commit phase.
    spill_seq: FxHashMap<BlockId, u64>,
    /// Structured event trace, present only when
    /// [`ClusterConfig::tracing`] is on. Every record happens in a serial
    /// engine phase, so the log is byte-identical across `worker_threads`.
    trace: Option<TraceLog>,
}

/// One admitted job's in-flight execution state, detached from the engine
/// so the session scheduler can interleave stages of different apps.
///
/// Produced by [`ClusterState::begin_job`]; each [`ClusterState::run_next_stage`]
/// call advances it by one stage; [`ClusterState::finish_job`] consumes it.
/// The ticket owns its stage plan and dependency clocks (`stage_done` floors
/// at `job_floor`, the global clock floor at admission), so interleaving
/// never perturbs a job's internal timing — N=1 runs are byte-identical to
/// the legacy serial path.
pub(crate) struct JobTicket {
    app: AppId,
    job: JobId,
    job_plan: blaze_dataflow::planner::JobPlan,
    /// Which shuffles each map stage feeds within this job.
    consumers: FxHashMap<RddId, Vec<(RddId, usize)>>,
    /// Per-stage completion times, seeded with `job_floor`.
    stage_done: Vec<SimTime>,
    /// Global clock floor snapshotted at admission; all stage starts fold
    /// from here, never from the live (cross-app) clock floor.
    job_floor: SimTime,
    /// Result-stage blocks accumulated so far.
    results: Vec<Block>,
    next_stage: usize,
    fault_on: bool,
}

impl JobTicket {
    pub(crate) fn done(&self) -> bool {
        self.next_stage >= self.job_plan.stages.len()
    }

    /// Simulated time this job has consumed so far (latest stage completion
    /// relative to the job's admission floor). The fair-share scheduler
    /// charges the per-stage delta of this to the owning app.
    pub(crate) fn sim_cost(&self) -> SimDuration {
        let latest = self.stage_done.iter().copied().max().unwrap_or(self.job_floor);
        latest.since(self.job_floor)
    }
}

/// Frozen, read-only view of the cluster a stage's tasks execute against.
///
/// Holding this by shared reference is what lets the execute phase run on
/// many threads: nothing behind it is mutated until every task of the stage
/// has returned.
struct ExecView<'a> {
    stores: &'a Stores,
    config: &'a ClusterConfig,
    /// Snapshot of [`CacheController::serialized_in_memory`] (the
    /// controller itself lives on the commit side).
    serialized_in_memory: bool,
    /// `(job, stage index)` coordinates for fault-injection coins, present
    /// only when the configured [`crate::fault::FaultPlan`] is enabled.
    /// `None` keeps the execute path entirely fault-free.
    fault_coords: Option<(JobId, u32)>,
}

/// A cache-relevant action observed while a task executed against the
/// frozen snapshot, to be replayed through the controller at commit.
/// Events carry the data (`Block`s are cheap `Arc` clones) so the commit
/// phase can perform admissions without re-running anything.
enum TaskEvent {
    /// An injected task-attempt failure (transient coin or executor loss).
    /// `wasted` is the slot time the dead attempt burned; attempts replay
    /// in index order through the deterministic commit.
    Failed { attempt: u32, cause: FaultCause, wasted: SimDuration },
    /// Served from a memory store (local or remote); `bytes` is the
    /// block's logical size (trace reporting). `serialized` marks a hit on
    /// an s-state block (the reader paid a deserialization); always false
    /// under the store-global Alluxio mode, which prices hits without
    /// per-block state.
    MemHit { id: BlockId, bytes: ByteSize, serialized: bool },
    /// Served from a disk store; `info.executor` is where it was found.
    DiskHit { info: BlockInfo, block: Block },
    /// Computed (or recomputed) from lineage; `depth` is how deep below
    /// the task's stage output the block sits (0 = the output itself).
    Computed {
        info: BlockInfo,
        edge: SimDuration,
        recomputed: bool,
        annotated: bool,
        depth: u32,
        block: Block,
    },
    /// Produced map-side shuffle buckets not present in the snapshot.
    MapOutput { shuffle: ShuffleId, map_part: usize, buckets: Vec<Block> },
    /// A disk-tier block failed checksum verification: the read was charged
    /// but the data is unusable. Commit quarantines the block (drops it
    /// from the disk store) and the task fell back to the next replica or
    /// to lineage recompute.
    CorruptSpill { info: BlockInfo },
    /// A shuffle-fetch attempt failed; the task backed off and retried.
    FetchRetry { shuffle: ShuffleId, reduce_part: u32, attempt: u32, backoff: SimDuration },
    /// Every fetch attempt failed: the parent's map outputs were
    /// regenerated through lineage (inline parent-stage resubmission).
    FetchEscalated { shuffle: ShuffleId, reduce_part: u32 },
}

/// Everything a finished task hands to the commit phase.
struct TaskOutput {
    /// The stage-output partition the task materialized.
    block: Block,
    /// Simulated time charged by the execute side (reads, compute, shuffle).
    /// Commit-side charges (cache writes) are added during replay.
    charge: TaskCharge,
    /// Cache-relevant actions in recursion order.
    events: Vec<TaskEvent>,
    /// The slice of `charge` spent re-producing fault-lost data (lineage
    /// replay below lost blocks, regeneration of lost map outputs).
    recovery: SimDuration,
}

/// Per-task execution context: the frozen view plus task-local scratch
/// state (computed-block memo and a shuffle overlay for outputs the task
/// itself produced).
struct TaskCtx<'a> {
    view: &'a ExecView<'a>,
    exec: ExecutorId,
    charge: TaskCharge,
    events: Vec<TaskEvent>,
    /// Blocks this task computed, so diamond lineage is computed once.
    computed: FxHashMap<BlockId, Block>,
    /// Map outputs this task produced (not yet visible to other tasks).
    shuffle_overlay: FxHashMap<(ShuffleId, usize), Vec<Block>>,
    /// Depth of the current materialization below a fault-lost block; while
    /// positive, compute edges and map-output writes are recovery work.
    recovery_depth: usize,
    /// Lineage depth of the current materialization below the task's stage
    /// output (0 = the output itself); recorded on `Computed` events so
    /// recomputation spans carry how deep the miss forced recursion.
    lineage_depth: u32,
    /// Accumulated recovery time (subset of `charge`).
    recovery: SimDuration,
}

impl<'a> TaskCtx<'a> {
    fn new(view: &'a ExecView<'a>, exec: ExecutorId) -> Self {
        Self {
            view,
            exec,
            charge: TaskCharge::default(),
            events: Vec::new(),
            computed: FxHashMap::default(),
            shuffle_overlay: FxHashMap::default(),
            recovery_depth: 0,
            lineage_depth: 0,
            recovery: SimDuration::ZERO,
        }
    }

    fn has_map_output(&self, shuffle: ShuffleId, map_part: usize) -> bool {
        self.shuffle_overlay.contains_key(&(shuffle, map_part))
            || self.view.stores.shuffle.has_map_output(shuffle, map_part)
    }

    fn fetch(&self, shuffle: ShuffleId, map_part: usize, reduce_part: usize) -> Option<Block> {
        self.shuffle_overlay
            .get(&(shuffle, map_part))
            .and_then(|b| b.get(reduce_part))
            .cloned()
            .or_else(|| self.view.stores.shuffle.fetch(shuffle, map_part, reduce_part))
    }

    fn fetch_bytes(&self, shuffle: ShuffleId, num_maps: usize, reduce_part: usize) -> ByteSize {
        (0..num_maps).filter_map(|m| self.fetch(shuffle, m, reduce_part)).map(|b| b.bytes()).sum()
    }

    /// Materializes one partition against the frozen snapshot, charging
    /// simulated time and recording events. Checks memory, then disk, then
    /// recomputes from lineage — the recovery order of paper Fig. 2.
    fn materialize(&mut self, plan: &Plan, rdd: RddId, part: usize) -> Result<Block> {
        let id = BlockId::new(rdd, part as u32);
        if let Some(b) = self.computed.get(&id) {
            return Ok(b.clone());
        }
        let exec = self.exec;
        let e = exec.raw() as usize;
        let view = self.view;

        // 1. Local memory hit. An s-state block (or any block under the
        // store-global Alluxio mode) is read through a deserialization.
        if let Some(sb) = view.stores.mem[e].get(id) {
            if view.serialized_in_memory || sb.serialized {
                self.charge.external_store_io +=
                    view.config.hardware.deser_time(sb.logical_bytes, sb.ser_factor);
            }
            self.events.push(TaskEvent::MemHit {
                id,
                bytes: sb.logical_bytes,
                serialized: sb.serialized,
            });
            return Ok(sb.block.clone());
        }

        // 1b. Remote memory hit on the block's home executor.
        let home = view.stores.block_home.get(&id).copied();
        if let Some(h) = home {
            if h != exec {
                if let Some(sb) = view.stores.mem[h.raw() as usize].get(id) {
                    self.charge.shuffle_fetch +=
                        view.config.hardware.network_time(sb.logical_bytes);
                    if sb.serialized {
                        self.charge.external_store_io +=
                            view.config.hardware.deser_time(sb.logical_bytes, sb.ser_factor);
                    }
                    self.events.push(TaskEvent::MemHit {
                        id,
                        bytes: sb.logical_bytes,
                        serialized: sb.serialized,
                    });
                    return Ok(sb.block.clone());
                }
            }
        }

        // 2. Disk hit (local first, then home).
        let mut corrupt_hits = 0u32;
        for &cand in [Some(exec), home.filter(|&h| h != exec)].iter().flatten() {
            let ce = cand.raw() as usize;
            if let Some(sb) = view.stores.disk[ce].get(id) {
                self.charge.disk_cache_read +=
                    view.config.hardware.fetch_from_disk_time(sb.logical_bytes, sb.ser_factor);
                if cand != exec {
                    self.charge.shuffle_fetch +=
                        view.config.hardware.network_time(sb.logical_bytes);
                }
                let info = BlockInfo {
                    id,
                    bytes: sb.logical_bytes,
                    ser_factor: sb.ser_factor,
                    executor: cand,
                };
                // Verify the spill checksum (stamped only while corruption
                // injection is on, so the fault-free path never pays this).
                // A mismatch means the read was wasted: record it for the
                // commit-side quarantine and fall through to the next
                // replica or to lineage recompute.
                if sb
                    .checksum
                    .is_some_and(|ck| ck != spill_checksum(id, sb.logical_bytes, sb.ser_factor))
                {
                    self.events.push(TaskEvent::CorruptSpill { info });
                    corrupt_hits += 1;
                    continue;
                }
                // Promotion back into memory (paper §2.3) is a commit-side
                // decision: record where the block was found.
                self.events.push(TaskEvent::DiskHit { info, block: sb.block.clone() });
                return Ok(sb.block.clone());
            }
        }

        // 3. Recompute from lineage. A block destroyed by executor loss —
        // or quarantined above as a corrupt spill — marks everything
        // materialized beneath it as recovery work (the depth counter
        // survives the recursion below).
        let lost = view.stores.lost_blocks.contains(&id) || corrupt_hits > 0;
        if lost {
            self.recovery_depth += 1;
        }
        let recomputed = view.stores.materialized_once.contains(&id);
        let depth = self.lineage_depth;
        self.lineage_depth += 1;
        let node = plan.node(rdd)?;
        let (block, in_elems, in_bytes) = match &node.compute {
            Compute::Source(gen) => {
                let b = gen(part)?;
                let (e_, b_) = (b.len() as u64, b.bytes().as_bytes());
                (b, e_, b_)
            }
            Compute::Narrow(f) => {
                let mut inputs = Vec::with_capacity(node.deps.len());
                for dep in &node.deps {
                    inputs.push(self.materialize(plan, dep.parent(), part)?);
                }
                let in_elems: u64 = inputs.iter().map(|b| b.len() as u64).sum();
                let in_bytes: u64 = inputs.iter().map(|b| b.bytes().as_bytes()).sum();
                (f(part, &inputs)?, in_elems, in_bytes)
            }
            Compute::ShuffleAgg(agg) => {
                let mut per_dep = Vec::with_capacity(node.deps.len());
                let mut in_elems = 0u64;
                let mut in_bytes = 0u64;
                for (dep_idx, dep) in node.deps.iter().enumerate() {
                    let Dep::Shuffle { parent, .. } = dep else {
                        return Err(BlazeError::InvalidPlan(format!(
                            "{rdd}: shuffle agg with narrow dep"
                        )));
                    };
                    let num_maps = plan.node(*parent)?.num_partitions;
                    // Ensure map outputs exist (they normally do; recovery
                    // across a missing shuffle regenerates them). An output
                    // that existed and was destroyed by a fault attributes
                    // its regeneration to recovery — Spark's fetch-failure
                    // parent-stage resubmission, inlined.
                    for m in 0..num_maps {
                        if !self.has_map_output((rdd, dep_idx), m) {
                            let replaying = view.stores.shuffle.was_lost((rdd, dep_idx), m);
                            if replaying {
                                self.recovery_depth += 1;
                            }
                            let parent_block = self.materialize(plan, *parent, m)?;
                            self.write_map_output(plan, rdd, dep_idx, m, &parent_block)?;
                            if replaying {
                                self.recovery_depth -= 1;
                            }
                        }
                    }
                    // Injected shuffle-fetch failures: every attempt flips
                    // a seeded coin; each failure charges a capped
                    // exponential backoff on the simulated clock, and an
                    // exhausted retry budget escalates to regenerating the
                    // parent's map outputs through lineage — the inline
                    // form of Spark's parent-stage resubmission. The
                    // regenerated buckets shadow the (unreachable) snapshot
                    // ones via the task's shuffle overlay.
                    if let Some((job, _)) = view.fault_coords {
                        let fault = &view.config.fault;
                        if fault.fetch_failure_rate > 0.0 {
                            let budget = fault.max_fetch_retries + 1;
                            let mut failed = 0u32;
                            while failed < budget
                                && fault.fetch_attempt_fails(
                                    job.raw(),
                                    rdd.raw(),
                                    dep_idx,
                                    part as u32,
                                    failed,
                                )
                            {
                                let backoff = fault.fetch_backoff(failed);
                                self.charge.fetch_backoff += backoff;
                                self.events.push(TaskEvent::FetchRetry {
                                    shuffle: (rdd, dep_idx),
                                    reduce_part: part as u32,
                                    attempt: failed,
                                    backoff,
                                });
                                failed += 1;
                            }
                            if failed == budget {
                                self.recovery_depth += 1;
                                for m in 0..num_maps {
                                    let parent_block = self.materialize(plan, *parent, m)?;
                                    self.force_write_map_output(
                                        plan,
                                        rdd,
                                        dep_idx,
                                        m,
                                        &parent_block,
                                    )?;
                                }
                                self.recovery_depth -= 1;
                                self.events.push(TaskEvent::FetchEscalated {
                                    shuffle: (rdd, dep_idx),
                                    reduce_part: part as u32,
                                });
                            }
                        }
                    }
                    let fetch_bytes = self.fetch_bytes((rdd, dep_idx), num_maps, part);
                    let parent_ser = plan.node(*parent)?.ser_factor;
                    self.charge.shuffle_fetch += view.config.hardware.network_time(fetch_bytes)
                        + view.config.hardware.deser_time(fetch_bytes, parent_ser);
                    let mut incoming = Vec::with_capacity(num_maps);
                    for m in 0..num_maps {
                        let b = self.fetch((rdd, dep_idx), m, part).ok_or_else(|| {
                            BlazeError::Execution(format!("missing map output {rdd}/{dep_idx}/{m}"))
                        })?;
                        in_elems += b.len() as u64;
                        in_bytes += b.bytes().as_bytes();
                        incoming.push(b);
                    }
                    per_dep.push(incoming);
                }
                (agg(part, &per_dep)?, in_elems, in_bytes)
            }
        };

        let edge = SimDuration::from_nanos(node.cost.charge_ns(in_elems, in_bytes) as u64);
        if recomputed {
            self.charge.recompute += edge;
        } else {
            self.charge.compute += edge;
        }
        if self.recovery_depth > 0 {
            self.recovery += edge;
        }
        if lost {
            self.recovery_depth -= 1;
        }
        self.lineage_depth = depth;

        let info =
            BlockInfo { id, bytes: block.bytes(), ser_factor: node.ser_factor, executor: exec };
        let annotated = node.cache_annotated && !node.unpersist_requested;
        self.events.push(TaskEvent::Computed {
            info,
            edge,
            recomputed,
            annotated,
            depth,
            block: block.clone(),
        });
        self.computed.insert(id, block.clone());
        Ok(block)
    }

    /// Produces the map-side buckets of one shuffle for `map_part`, unless
    /// the snapshot (or this task) already has them.
    fn write_map_output(
        &mut self,
        plan: &Plan,
        child: RddId,
        dep_idx: usize,
        map_part: usize,
        input: &Block,
    ) -> Result<()> {
        if self.has_map_output((child, dep_idx), map_part) {
            return Ok(());
        }
        self.force_write_map_output(plan, child, dep_idx, map_part, input)
    }

    /// Re-produces map-side buckets unconditionally (fetch-failure
    /// escalation: the outputs exist in the snapshot but are unreachable,
    /// so the parent's map side re-runs and the fresh buckets shadow the
    /// snapshot's through the task overlay).
    fn force_write_map_output(
        &mut self,
        plan: &Plan,
        child: RddId,
        dep_idx: usize,
        map_part: usize,
        input: &Block,
    ) -> Result<()> {
        let shuffle: ShuffleId = (child, dep_idx);
        let child_node = plan.node(child)?;
        let Dep::Shuffle { parent, map_side } = &child_node.deps[dep_idx] else {
            return Err(BlazeError::InvalidPlan(format!(
                "{child}: dep {dep_idx} is not a shuffle"
            )));
        };
        let buckets = map_side(input, child_node.num_partitions)?;
        if buckets.len() != child_node.num_partitions {
            return Err(BlazeError::Execution(format!(
                "map-side for {child} produced {} buckets, expected {}",
                buckets.len(),
                child_node.num_partitions
            )));
        }
        let out_bytes: ByteSize = buckets.iter().map(Block::bytes).sum();
        let parent_ser = plan.node(*parent)?.ser_factor;
        // Shuffle write = serialize + write shuffle files (Spark behaviour);
        // charged to the shuffle category, not to cache disk I/O.
        let write = self.view.config.hardware.ser_time(out_bytes, parent_ser)
            + self.view.config.hardware.disk_write_time(out_bytes);
        self.charge.shuffle_write += write;
        if self.recovery_depth > 0 {
            self.recovery += write;
        }
        self.events.push(TaskEvent::MapOutput { shuffle, map_part, buckets: buckets.clone() });
        self.shuffle_overlay.insert((shuffle, map_part), buckets);
        Ok(())
    }
}

/// Runs one task against the frozen view: materialize the stage-output
/// partition, then the map-side writes for every consuming shuffle.
fn execute_task(
    view: &ExecView<'_>,
    plan: &Plan,
    output: RddId,
    part: usize,
    exec: ExecutorId,
    consumers: &[(RddId, usize)],
    base_attempt: u32,
) -> Result<TaskOutput> {
    let mut task = TaskCtx::new(view, exec);
    let block = task.materialize(plan, output, part)?;
    for &(child, dep_idx) in consumers {
        task.write_map_output(plan, child, dep_idx, part, &block)?;
    }
    let mut events = task.events;

    // Injected transient failures: flip the deterministic per-attempt coin
    // until one attempt survives or the retry budget is exhausted. Every
    // failed attempt burns (the same) slot time; attempts replay in index
    // order through the serial commit, so metrics stay thread-count
    // independent. `base_attempt` continues the coin stream after an
    // executor-loss re-execution.
    if let Some((job, stage)) = view.fault_coords {
        let fault = &view.config.fault;
        if fault.task_failure_rate > 0.0 {
            let max = fault.max_attempts();
            let wasted = task.charge.total();
            let mut failed: Vec<TaskEvent> = Vec::new();
            let mut attempt = base_attempt;
            while attempt < max && fault.task_attempt_fails(job.raw(), stage, part as u32, attempt)
            {
                failed.push(TaskEvent::Failed { attempt, cause: FaultCause::Transient, wasted });
                attempt += 1;
            }
            if attempt >= max && !failed.is_empty() {
                return Err(BlazeError::Execution(format!(
                    "task {output}[{part}] failed all {max} attempts (injected transient faults)"
                )));
            }
            if !failed.is_empty() {
                failed.extend(events);
                events = failed;
            }
        }
    }
    Ok(TaskOutput { block, charge: task.charge, events, recovery: task.recovery })
}

/// Executes every task of a stage, on a scoped worker pool when more than
/// one worker thread is configured. Results are returned in partition
/// order regardless of completion order.
fn execute_stage(
    view: &ExecView<'_>,
    plan: &Plan,
    output: RddId,
    placements: &[ExecutorId],
    consumers: &[(RddId, usize)],
    worker_threads: usize,
) -> Vec<Result<TaskOutput>> {
    let n = placements.len();
    let workers = worker_threads.min(n);
    if workers <= 1 {
        return (0..n)
            .map(|p| execute_task(view, plan, output, p, placements[p], consumers, 0))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut ordered: Vec<Option<Result<TaskOutput>>> = Vec::with_capacity(n);
    ordered.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let p = next.fetch_add(1, Ordering::Relaxed);
                        if p >= n {
                            break;
                        }
                        done.push((
                            p,
                            execute_task(view, plan, output, p, placements[p], consumers, 0),
                        ));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            // A panicking task is a bug in an operator closure; propagating
            // the panic (not masking it as an error) preserves the backtrace.
            // audit: allow(unwrap)
            for (p, result) in handle.join().expect("stage worker panicked") {
                ordered[p] = Some(result);
            }
        }
    });
    ordered
        .into_iter()
        .enumerate()
        .map(|(p, r)| {
            r.unwrap_or_else(|| {
                Err(BlazeError::Execution(format!("partition {p} of {output} never executed")))
            })
        })
        .collect()
}

impl ClusterState {
    fn new(config: ClusterConfig, controller: Box<dyn CacheController>) -> Self {
        let execs = config.executors;
        Self {
            stores: Stores {
                mem: (0..execs).map(|_| BlockStore::new(config.memory_capacity)).collect(),
                disk: (0..execs).map(|_| BlockStore::new(config.disk_capacity)).collect(),
                shuffle: ShuffleStore::new(),
                block_home: FxHashMap::default(),
                materialized_once: FxHashSet::default(),
                lost_blocks: FxHashSet::default(),
            },
            slots: (0..execs).map(|_| vec![SimTime::ZERO; config.slots_per_executor]).collect(),
            metrics: Metrics::new(),
            job_counters: FxHashMap::default(),
            current_app: AppId(0),
            block_app: FxHashMap::default(),
            clock_floor: SimTime::ZERO,
            job_targets: Vec::new(),
            seen_audit: FxHashSet::default(),
            next_crash: 0,
            spill_seq: FxHashMap::default(),
            trace: config.tracing.then(TraceLog::new),
            config,
            controller,
        }
    }

    fn ctrl_ctx(&self, now: SimTime) -> CtrlCtx {
        CtrlCtx {
            now,
            app: self.current_app,
            hardware: self.config.hardware,
            memory_capacity: self.config.memory_capacity,
            disk_capacity: self.config.disk_capacity,
            executors: self.config.executors,
        }
    }

    // ---- Job execution ---------------------------------------------------

    /// Preflight audit (see `blaze-audit`): error-severity diagnostics
    /// abort the job with [`BlazeError::Audit`] before any task runs;
    /// warning-severity findings are counted into the metrics once per
    /// (code, dataset). [`ClusterConfig::strict_audit`] promotes warnings
    /// to errors.
    fn preflight_audit(&mut self, plan: &Plan, target: RddId) -> Result<()> {
        if !self.job_targets.contains(&target) {
            self.job_targets.push(target);
        }
        // Size estimates for the capacity check come from blocks the
        // cluster has already materialized (per-dataset resident bytes).
        let mut size_estimates: FxHashMap<RddId, ByteSize> = FxHashMap::default();
        for store in self.stores.mem.iter().chain(self.stores.disk.iter()) {
            for (id, sb) in store.iter() {
                *size_estimates.entry(id.rdd).or_insert(ByteSize::ZERO) += sb.logical_bytes;
            }
        }
        let fault = &self.config.fault;
        let audit_config = blaze_audit::AuditConfig {
            total_memory: Some(self.config.total_memory()),
            total_disk: Some(self.config.disk_capacity * self.config.executors as u64),
            size_estimates,
            strict: self.config.strict_audit,
            recovery_depth_limit: fault.max_recoverable_depth(),
            lineage_through_shuffles: !fault.external_shuffle_service,
            degradation: fault.enabled().then_some(blaze_audit::DegradationAuditInput {
                straggler_rate: fault.straggler_rate,
                straggler_slowdown: fault.straggler_slowdown,
                straggler_slowdown_budget: crate::fault::STRAGGLER_SLOWDOWN_BUDGET,
                speculation: fault.speculation,
                spill_corruption_rate: fault.spill_corruption_rate,
            }),
        };
        let mut report = blaze_audit::audit_job(plan, target, &self.job_targets, &audit_config);
        // Controllers contribute their own preflight findings (e.g. BA304
        // when a solve deadline cannot fit even the cheapest ladder rung),
        // subject to the same strict-mode promotion.
        let extra = self.controller.preflight_diagnostics();
        if !extra.is_empty() {
            let mut diags = report.diagnostics;
            diags.extend(extra);
            report = blaze_audit::AuditReport::new(diags);
            if self.config.strict_audit {
                report = report.promoted();
            }
        }
        if let Some(d) = report.errors().next() {
            return Err(BlazeError::Audit {
                code: d.code.as_str().into(),
                message: d.message.clone(),
            });
        }
        for d in report.warnings() {
            if self.seen_audit.insert((d.code, d.rdd)) {
                self.metrics.audit_warnings += 1;
            }
        }
        Ok(())
    }

    /// Debug-build shadow accounting: after every commit phase, each
    /// store's incremental `used` counter must equal the sum of its
    /// resident blocks' stored bytes. Drift here would silently corrupt
    /// every capacity decision downstream.
    fn debug_check_store_accounting(&self) {
        debug_assert!(
            self.stores.mem.iter().all(BlockStore::accounting_consistent),
            "memory-store byte accounting drifted from resident blocks"
        );
        debug_assert!(
            self.stores.disk.iter().all(BlockStore::accounting_consistent),
            "disk-store byte accounting drifted from resident blocks"
        );
    }

    fn run_job(&mut self, plan: &Plan, target: RddId) -> Result<Vec<Block>> {
        // The legacy serial path is the scheduler path degenerated to one
        // app: begin, run every stage back-to-back, finish. Keeping it as
        // this exact composition is what makes N=1 session traces
        // byte-identical to historical single-app runs.
        let mut ticket = self.begin_job(AppId(0), plan, target)?;
        while !ticket.done() {
            self.run_next_stage(&mut ticket, plan)?;
        }
        self.finish_job(ticket)
    }

    /// Admits one job of `app`: preflight audit, per-app job numbering,
    /// fault housekeeping, controller submit hook, and stage planning.
    /// The returned [`JobTicket`] carries everything the per-stage
    /// execution needs, so the session layer can interleave stages of
    /// different apps between calls.
    fn begin_job(&mut self, app: AppId, plan: &Plan, target: RddId) -> Result<JobTicket> {
        self.current_app = app;
        self.preflight_audit(plan, target)?;
        let counter = self.job_counters.entry(app).or_insert(0);
        let job = JobId(*counter);
        *counter += 1;
        let job_plan = blaze_dataflow::planner::plan_job(plan, target)?;

        // All fault paths hang off this one gate: with the default
        // (disabled) plan the run is byte-identical to a fault-free build.
        let fault_on = self.config.fault.enabled();
        if fault_on {
            self.fire_idle_crashes(self.clock_floor);
            self.inject_map_output_loss(job);
        }
        if let Some(tr) = self.trace.as_mut() {
            tr.record(TraceEvent::JobStarted { at: self.clock_floor, app, job, target });
        }

        // Which shuffles does each map stage feed within this job?
        let mut consumers: FxHashMap<RddId, Vec<(RddId, usize)>> = FxHashMap::default();
        for stage in &job_plan.stages {
            for &rdd in &stage.rdds {
                for (dep_idx, dep) in plan.node(rdd)?.deps.iter().enumerate() {
                    if let Dep::Shuffle { parent, .. } = dep {
                        consumers.entry(*parent).or_default().push((rdd, dep_idx));
                    }
                }
            }
        }

        // Give the controller a chance to restate partitions for this job
        // (Blaze's ILP trigger, §5.6).
        let ctx = self.ctrl_ctx(self.clock_floor);
        let cmds = self.controller.on_job_submit(&ctx, job, &job_plan, plan);
        self.apply_commands(plan, self.clock_floor, cmds);
        // If the controller's decision path stepped down its solver
        // degradation ladder during this submit, ledger the rung: "why did
        // the solver not run at full strength here?" must be answerable
        // from the trace alone.
        if let Some(note) = self.controller.take_degradation() {
            if let Some(tr) = self.trace.as_mut() {
                tr.record(TraceEvent::Cache(CacheRecord {
                    at: self.clock_floor,
                    app,
                    executor: ExecutorId(0),
                    id: BlockId::new(RddId(u32::MAX), 0),
                    bytes: ByteSize::ZERO,
                    decision: CacheDecision::SolverDegrade,
                    rationale: Some(format!(
                        "ladder: {} ({} degraded, {} passthrough)",
                        note.rung, note.degraded, note.passthrough
                    )),
                }));
            }
        }

        let stage_done = vec![self.clock_floor; job_plan.stages.len()];
        Ok(JobTicket {
            app,
            job,
            job_floor: self.clock_floor,
            job_plan,
            consumers,
            stage_done,
            results: Vec::new(),
            next_stage: 0,
            fault_on,
        })
    }

    /// Runs the ticket's next stage end to end (plan / execute / commit).
    /// Stage starts floor at the ticket's own `job_floor`, not the global
    /// clock floor, so another app finishing a job mid-flight never shifts
    /// this job's dependency-driven stage times.
    #[allow(clippy::too_many_lines)]
    fn run_next_stage(&mut self, ticket: &mut JobTicket, plan: &Plan) -> Result<()> {
        self.current_app = ticket.app;
        let job = ticket.job;
        let fault_on = ticket.fault_on;
        let last_stage = ticket.job_plan.stages.len() - 1;
        let idx = ticket.next_stage;
        ticket.next_stage += 1;
        let stage = &ticket.job_plan.stages[idx];
        let is_result = stage.index == last_stage;
        let start =
            stage.parent_stages.iter().fold(ticket.job_floor, |t, &p| t.max(ticket.stage_done[p]));

        // Skip map stages whose shuffle outputs all exist already.
        let stage_consumers = ticket.consumers.get(&stage.output).cloned().unwrap_or_default();
        if !is_result {
            let num_maps = stage.num_partitions;
            let all_done = stage_consumers.iter().all(|&(child, dep_idx)| {
                self.stores.shuffle.is_complete((child, dep_idx), num_maps)
            });
            if all_done {
                ticket.stage_done[stage.index] = start;
                self.metrics.stages_skipped += 1;
                // Skipped stages still "complete": dependency-aware
                // controllers must see their references consumed.
                let ctx = self.ctrl_ctx(start);
                let cmds = self.controller.on_stage_complete(&ctx, stage.output, job, plan);
                self.apply_commands(plan, start, cmds);
                return Ok(());
            } else if fault_on
                && stage_consumers.iter().any(|&(c, d)| self.stores.shuffle.any_lost((c, d)))
            {
                // This map stage would have been skipped but for lost
                // shuffle outputs: lineage-driven parent-stage
                // resubmission (Spark's fetch-failure handling).
                self.metrics.recovery.stages_resubmitted += 1;
                if let Some(tr) = self.trace.as_mut() {
                    tr.record(TraceEvent::StageResubmitted {
                        at: start,
                        app: ticket.app,
                        job,
                        stage_output: stage.output,
                    });
                }
            }
        }

        // -- Plan: deterministic locality placement, partition order,
        //    against the pre-stage state. Mutable because an injected
        //    executor crash reschedules uncommitted tasks.
        let mut placements: Vec<ExecutorId> = (0..stage.num_partitions)
            .map(|p| self.pick_executor(plan, stage.output, p))
            .collect::<Result<_>>()?;
        if let Some(tr) = self.trace.as_mut() {
            for (p, &executor) in placements.iter().enumerate() {
                tr.record(TraceEvent::TaskPlanned {
                    at: start,
                    app: ticket.app,
                    job,
                    stage_output: stage.output,
                    partition: p as u32,
                    executor,
                });
            }
        }

        // -- Execute: all tasks run against a frozen snapshot of the
        //    stores; shared state is only read.
        let mut outputs: Vec<Option<Result<TaskOutput>>> = {
            let view = ExecView {
                stores: &self.stores,
                config: &self.config,
                serialized_in_memory: self.controller.serialized_in_memory(),
                fault_coords: fault_on.then_some((job, stage.index as u32)),
            };
            execute_stage(
                &view,
                plan,
                stage.output,
                &placements,
                &stage_consumers,
                self.config.worker_threads,
            )
            .into_iter()
            .map(Some)
            .collect()
        };

        // Straggler injection: seeded per-task slowdowns plus a
        // quantile-based speculation deadline (the shape of Spark's
        // `spark.speculation.{quantile,multiplier}`), all decided in
        // the serial commit phase from pre-commit execute charges so
        // traces stay thread-count invariant.
        let straggle_on = fault_on && self.config.fault.straggler_rate > 0.0;
        let mut stragglers: Vec<bool> = Vec::new();
        let mut deadline = SimDuration::ZERO;
        if straggle_on && !outputs.is_empty() {
            let fault = &self.config.fault;
            stragglers = (0..outputs.len())
                .map(|p| fault.task_straggles(job.raw(), stage.index as u32, p as u32))
                .collect();
            let mut observed: Vec<SimDuration> = outputs
                .iter()
                .enumerate()
                .map(|(p, o)| {
                    let base = o
                        .as_ref()
                        .and_then(|r| r.as_ref().ok())
                        .map_or(SimDuration::ZERO, |out| out.charge.total());
                    if stragglers[p] {
                        base * fault.straggler_slowdown
                    } else {
                        base
                    }
                })
                .collect();
            observed.sort_unstable();
            let q_idx = (SPECULATION_QUANTILE * (observed.len() - 1) as f64) as usize;
            deadline = observed[q_idx] * SPECULATION_SLACK;
        }

        // -- Commit: serial, partition-index order. The first failed
        //    task aborts the job (deterministically, independent of
        //    which worker observed it first). Scheduled crashes fire at
        //    commit boundaries on the simulated clock.
        let mut stage_end = start;
        for p in 0..outputs.len() {
            if fault_on {
                self.handle_due_crashes(
                    plan,
                    job,
                    stage.output,
                    stage.index as u32,
                    &stage_consumers,
                    &mut placements,
                    &mut outputs,
                    p,
                    stage_end.max(start),
                );
            }
            let output = outputs[p].take().ok_or_else(|| {
                BlazeError::Execution(format!("partition {p} missing at commit"))
            })??;
            let block = output.block.clone();
            let end = if straggle_on && stragglers[p] {
                self.commit_straggler(job, stage.output, p, placements[p], start, output, deadline)
            } else {
                self.commit_task(job, stage.output, p, placements[p], start, output)
            };
            stage_end = stage_end.max(end);
            if is_result {
                ticket.results.push(block);
            }
        }
        ticket.stage_done[stage.index] = stage_end;

        self.debug_check_store_accounting();

        // Stage-completion hook (auto-caching / prefetch).
        let ctx = self.ctrl_ctx(stage_end);
        let cmds = self.controller.on_stage_complete(&ctx, stage.output, job, plan);
        self.apply_commands(plan, stage_end, cmds);
        self.metrics.stages_run += 1;
        let disk_resident: ByteSize = self.stores.disk.iter().map(BlockStore::used).sum();
        self.metrics.sample_disk_residency(disk_resident);
        Ok(())
    }

    /// Completes a job whose stages have all run: advances the global
    /// clock floor (monotonically — another app may already have pushed
    /// it past this job's end), attributes per-app metrics, and returns
    /// the result blocks.
    fn finish_job(&mut self, ticket: JobTicket) -> Result<Vec<Block>> {
        debug_assert!(ticket.done(), "finish_job called with stages still pending");
        self.current_app = ticket.app;
        let last_stage = ticket.job_plan.stages.len() - 1;
        let end = ticket.stage_done[last_stage];
        self.clock_floor = self.clock_floor.max(end);
        self.metrics.jobs += 1;
        self.metrics.completion_time = self.clock_floor;
        let app_metrics = self.metrics.app_metrics(ticket.app);
        app_metrics.jobs += 1;
        app_metrics.completion_time = end;
        if let Some(tr) = self.trace.as_mut() {
            tr.record(TraceEvent::JobCompleted { at: end, app: ticket.app, job: ticket.job });
        }
        Ok(ticket.results)
    }

    /// Commits one executed task: assigns it the earliest slot of its
    /// executor, replays its event log through the controller (which may
    /// add cache-write charges), and records metrics and the trace.
    /// Returns the task's simulated end time.
    fn commit_task(
        &mut self,
        job: JobId,
        stage_output: RddId,
        part: usize,
        exec: ExecutorId,
        start: SimTime,
        output: TaskOutput,
    ) -> SimTime {
        self.commit_task_at(job, stage_output, part, exec, start, output, None)
    }

    /// [`Self::commit_task`] with an extra launch floor: a speculative copy
    /// cannot start before the original has provably blown the stage
    /// deadline, even if the copy executor has an idle slot earlier.
    #[allow(clippy::too_many_arguments)]
    fn commit_task_at(
        &mut self,
        job: JobId,
        stage_output: RddId,
        part: usize,
        exec: ExecutorId,
        start: SimTime,
        output: TaskOutput,
        min_start: Option<SimTime>,
    ) -> SimTime {
        let app = self.current_app;
        let e = exec.raw() as usize;
        let slot = Self::earliest_slot(&self.slots[e]);
        let t0 = self.slots[e][slot].max(start).max(min_start.unwrap_or(SimTime::ZERO));
        let mut charge = output.charge;
        let recovery = output.recovery;
        let mut next_attempt = 0u32;

        for event in output.events {
            match event {
                TaskEvent::Failed { attempt, cause, wasted } => {
                    // The attempt index is part of the deterministic coin
                    // stream; replay must stay contiguous across transient
                    // retries and executor-loss re-executions.
                    debug_assert_eq!(attempt, next_attempt, "non-contiguous attempt replay");
                    next_attempt = attempt + 1;
                    match cause {
                        FaultCause::Transient => self.metrics.recovery.task_retries += 1,
                        FaultCause::ExecutorLost => {
                            self.metrics.recovery.tasks_lost_to_crash += 1;
                        }
                    }
                    charge.fault_wasted += wasted;
                    self.metrics.recovery.wasted_time += wasted;
                    self.metrics.recovery.record_job_recovery(app, job, wasted);
                    if let Some(tr) = self.trace.as_mut() {
                        tr.record(TraceEvent::TaskRetry {
                            at: t0,
                            app,
                            job,
                            stage_output,
                            partition: part as u32,
                            attempt,
                            cause,
                            wasted,
                        });
                    }
                }
                TaskEvent::MemHit { id, bytes, serialized } => {
                    let ctx = self.ctrl_ctx(self.clock_floor);
                    self.controller.on_access(&ctx, id);
                    self.metrics.mem_hits += 1;
                    // Cross-app attribution: a hit on a block another app
                    // materialized is the shared cache paying off.
                    let owner = self.block_app.get(&id).copied().unwrap_or(app);
                    let app_metrics = self.metrics.app_metrics(app);
                    app_metrics.mem_hits += 1;
                    if owner != app {
                        app_metrics.cross_mem_hits += 1;
                    }
                    if serialized {
                        self.metrics.ser_mem_hits += 1;
                        *self.metrics.ser_mem_hits_by_job.entry((app, job)).or_default() += 1;
                    }
                    if let Some(tr) = self.trace.as_mut() {
                        tr.record(TraceEvent::Cache(CacheRecord {
                            at: t0,
                            app,
                            executor: exec,
                            id,
                            bytes,
                            decision: if serialized {
                                CacheDecision::HitSerializedMemory
                            } else {
                                CacheDecision::HitMemory
                            },
                            rationale: None,
                        }));
                    }
                }
                TaskEvent::DiskHit { info, block } => {
                    let ctx = self.ctrl_ctx(self.clock_floor);
                    self.controller.on_access(&ctx, info.id);
                    self.metrics.disk_hits += 1;
                    let owner = self.block_app.get(&info.id).copied().unwrap_or(app);
                    let app_metrics = self.metrics.app_metrics(app);
                    app_metrics.disk_hits += 1;
                    if owner != app {
                        app_metrics.cross_disk_hits += 1;
                    }
                    if let Some(tr) = self.trace.as_mut() {
                        tr.record(TraceEvent::Cache(CacheRecord {
                            at: t0,
                            app,
                            executor: info.executor,
                            id: info.id,
                            bytes: info.bytes,
                            decision: CacheDecision::HitDisk,
                            rationale: None,
                        }));
                    }
                    // Optional promotion back into memory (paper §2.3:
                    // recovered data can be cached again).
                    let ctx = self.ctrl_ctx(self.clock_floor);
                    if self.controller.readmit_after_disk_read(&ctx, &info) == Admission::Memory {
                        let ce = info.executor.raw() as usize;
                        // Skip if an earlier commit in this stage already
                        // promoted (or dropped) the block.
                        if !self.stores.mem[ce].contains(info.id)
                            && self.stores.disk[ce].contains(info.id)
                        {
                            // Attempt the promotion while the block is
                            // still on disk: a failed attempt leaves it
                            // where it was (and the spill-guard prevents
                            // re-charging a write).
                            let promoted = self.try_cache_memory(
                                info.executor,
                                &info,
                                block,
                                &mut charge,
                                t0,
                                CacheDecision::PromoteToMemory,
                            );
                            if promoted {
                                self.stores.disk[ce].remove(info.id);
                            }
                        }
                    }
                }
                TaskEvent::Computed { info, edge, recomputed, annotated, depth, block } => {
                    if recomputed {
                        self.metrics.recompute_misses += 1;
                        self.metrics.record_recompute(app, job, info.id.rdd, edge);
                        if let Some(tr) = self.trace.as_mut() {
                            tr.record(TraceEvent::Cache(CacheRecord {
                                at: t0,
                                app,
                                executor: info.executor,
                                id: info.id,
                                bytes: info.bytes,
                                decision: CacheDecision::MissRecompute,
                                rationale: None,
                            }));
                            tr.record(TraceEvent::Recompute {
                                at: t0,
                                app,
                                job,
                                id: info.id,
                                executor: info.executor,
                                depth,
                                duration: edge,
                            });
                        }
                    }
                    self.stores.materialized_once.insert(info.id);
                    if self.stores.lost_blocks.remove(&info.id) {
                        self.metrics.recovery.blocks_recovered += 1;
                        if let Some(tr) = self.trace.as_mut() {
                            tr.record(TraceEvent::BlockRecovered { at: t0, id: info.id });
                        }
                    }
                    let ctx = self.ctrl_ctx(self.clock_floor);
                    let event = PartitionEvent { info, edge_compute: edge, job, recomputed };
                    self.controller.on_partition_computed(&ctx, &event);

                    // Unified caching decision (paper §4.1).
                    let ctx = self.ctrl_ctx(self.clock_floor);
                    if self.controller.should_cache(&ctx, &info, annotated) {
                        let ctx = self.ctrl_ctx(self.clock_floor);
                        match self.controller.admit(&ctx, &info) {
                            Admission::Memory => {
                                self.try_cache_memory(
                                    info.executor,
                                    &info,
                                    block,
                                    &mut charge,
                                    t0,
                                    CacheDecision::AdmitMemory,
                                );
                            }
                            Admission::Disk => {
                                self.spill_to_disk(info.executor, &info, block, &mut charge, t0);
                            }
                            Admission::Skip => {}
                        }
                    }
                    // Even uncached productions update the home hint: the
                    // producing executor is where recomputation is cheapest
                    // next time.
                    self.stores.block_home.entry(info.id).or_insert(info.executor);
                    // First producer owns the block for cross-app attribution.
                    self.block_app.entry(info.id).or_insert(app);
                }
                TaskEvent::MapOutput { shuffle, map_part, buckets } => {
                    // First writer wins; duplicate regenerations (possible
                    // when several tasks recover the same missing shuffle)
                    // produce identical buckets.
                    if !self.stores.shuffle.has_map_output(shuffle, map_part) {
                        self.stores.shuffle.put_map_output(shuffle, map_part, buckets, exec);
                        if self.stores.shuffle.mark_recovered(shuffle, map_part) {
                            self.metrics.recovery.map_outputs_recovered += 1;
                            if let Some(tr) = self.trace.as_mut() {
                                tr.record(TraceEvent::MapOutputRecovered {
                                    at: t0,
                                    child: shuffle.0,
                                    dep_idx: shuffle.1 as u32,
                                    map_part: map_part as u32,
                                });
                            }
                        }
                    }
                }
                TaskEvent::CorruptSpill { info } => {
                    // Quarantine: drop the corrupt block from the disk tier
                    // (the remove-guard deduplicates detections by several
                    // tasks of one stage). Lineage re-produces the data.
                    self.quarantine_spill(info.executor, info.id, info.bytes, t0);
                }
                TaskEvent::FetchRetry { shuffle, reduce_part, attempt, backoff } => {
                    self.metrics.recovery.fetch_retries += 1;
                    self.metrics.recovery.fetch_backoff_time += backoff;
                    if let Some(tr) = self.trace.as_mut() {
                        tr.record(TraceEvent::FetchRetry {
                            at: t0,
                            app,
                            job,
                            child: shuffle.0,
                            dep_idx: shuffle.1 as u32,
                            reduce_part,
                            attempt,
                            backoff,
                        });
                    }
                }
                TaskEvent::FetchEscalated { shuffle, reduce_part } => {
                    self.metrics.recovery.fetch_escalations += 1;
                    if let Some(tr) = self.trace.as_mut() {
                        tr.record(TraceEvent::FetchEscalated {
                            at: t0,
                            app,
                            job,
                            child: shuffle.0,
                            dep_idx: shuffle.1 as u32,
                            reduce_part,
                        });
                    }
                }
            }
        }

        if recovery > SimDuration::ZERO {
            self.metrics.recovery.lineage_replay_time += recovery;
            self.metrics.recovery.record_job_recovery(app, job, recovery);
            if let Some(tr) = self.trace.as_mut() {
                tr.record(TraceEvent::RecoveryReplay {
                    at: t0,
                    app,
                    job,
                    stage_output,
                    partition: part as u32,
                    duration: recovery,
                });
            }
        }
        self.metrics.record_task(&charge);
        let end = t0 + charge.total();
        self.metrics.record_trace(crate::metrics::TaskTrace {
            app,
            job,
            stage_output,
            partition: part as u32,
            executor: exec,
            slot: slot as u32,
            start: t0,
            end,
            charge,
        });
        if let Some(tr) = self.trace.as_mut() {
            tr.record(TraceEvent::TaskCommitted {
                app,
                job,
                stage_output,
                partition: part as u32,
                executor: exec,
                slot: slot as u32,
                start: t0,
                end,
            });
        }
        self.slots[e][slot] = end;
        end
    }

    /// Commits a task the fault plan marked as a straggler: its execute
    /// charge is inflated by the plan's slowdown, and — when speculative
    /// execution is on and the slowed duration blows the stage `deadline` —
    /// a speculative copy on the next executor races the original.
    ///
    /// The race is decided analytically on the simulated clock: the copy
    /// re-runs nothing (the task's computed output is identical; its event
    /// log is reused, with `Computed` ownership rewritten to the copy
    /// executor). Whichever attempt finishes first commits; the loser's
    /// slot stays busy until the winner's end, and that burn is charged to
    /// [`crate::metrics::SpeculationMetrics`] — not to any task span, so
    /// the BA402 busy-time reconciliation stays exact.
    #[allow(clippy::too_many_arguments)]
    fn commit_straggler(
        &mut self,
        job: JobId,
        stage_output: RddId,
        part: usize,
        exec: ExecutorId,
        start: SimTime,
        mut output: TaskOutput,
        deadline: SimDuration,
    ) -> SimTime {
        let slowdown = self.config.fault.straggler_slowdown;
        let speculate = self.config.fault.speculation;
        let base = output.charge.total();
        let slowed = base * slowdown;
        let delay = slowed.saturating_sub(base);
        self.metrics.speculation.stragglers += 1;

        // Decide the race before committing anything: both launch times are
        // pure functions of the current slot clocks.
        let e = exec.raw() as usize;
        let orig_slot = Self::earliest_slot(&self.slots[e]);
        let t0_orig = self.slots[e][orig_slot].max(start);
        let orig_end = t0_orig + slowed;
        let spec = if speculate && self.config.executors >= 2 && slowed > deadline {
            let se = (e + 1) % self.config.executors;
            let spec_slot = Self::earliest_slot(&self.slots[se]);
            // The copy launches once the original has provably blown the
            // deadline, on the copy executor's earliest slot.
            let spec_start = self.slots[se][spec_slot].max(start).max(t0_orig + deadline);
            Some((se, spec_slot, spec_start, spec_start + base))
        } else {
            None
        };

        match spec {
            Some((se, _, spec_start, spec_end)) if spec_end < orig_end => {
                // The copy wins: it commits (at full speed, floored at its
                // launch time) and the original is cancelled, having burned
                // its slot from launch to the winner's end.
                let copy_exec = ExecutorId(se as u32);
                for ev in &mut output.events {
                    if let TaskEvent::Computed { info, .. } = ev {
                        if info.executor == exec {
                            info.executor = copy_exec;
                        }
                    }
                }
                let end = self.commit_task_at(
                    job,
                    stage_output,
                    part,
                    copy_exec,
                    start,
                    output,
                    Some(spec_start),
                );
                let wasted = end.since(t0_orig);
                self.slots[e][orig_slot] = self.slots[e][orig_slot].max(end);
                self.metrics.speculation.launched += 1;
                *self.metrics.speculation_by_job.entry((self.current_app, job)).or_default() += 1;
                self.metrics.speculation.wins += 1;
                self.metrics.speculation.wasted += wasted;
                if let Some(tr) = self.trace.as_mut() {
                    tr.record(TraceEvent::Straggler {
                        at: t0_orig,
                        app: self.current_app,
                        job,
                        stage_output,
                        partition: part as u32,
                        delay: SimDuration::ZERO,
                    });
                    tr.record(TraceEvent::Speculation {
                        at: t0_orig,
                        app: self.current_app,
                        job,
                        stage_output,
                        partition: part as u32,
                        copy_executor: copy_exec,
                        copy_won: true,
                        wasted,
                    });
                }
                end
            }
            _ => {
                // The original commits, carrying the straggler delay in its
                // charge (so its span and the busy clock agree); a launched
                // but losing copy burns its slot until the original's end.
                output.charge.straggler_delay = delay;
                self.metrics.speculation.straggler_delay += delay;
                let end = self.commit_task(job, stage_output, part, exec, start, output);
                if let Some(tr) = self.trace.as_mut() {
                    tr.record(TraceEvent::Straggler {
                        at: t0_orig,
                        app: self.current_app,
                        job,
                        stage_output,
                        partition: part as u32,
                        delay,
                    });
                }
                if let Some((se, spec_slot, spec_start, _)) = spec {
                    if spec_start < end {
                        let wasted = end.since(spec_start);
                        self.metrics.speculation.launched += 1;
                        *self
                            .metrics
                            .speculation_by_job
                            .entry((self.current_app, job))
                            .or_default() += 1;
                        self.metrics.speculation.wasted += wasted;
                        self.slots[se][spec_slot] = self.slots[se][spec_slot].max(end);
                        if let Some(tr) = self.trace.as_mut() {
                            tr.record(TraceEvent::Speculation {
                                at: t0_orig,
                                app: self.current_app,
                                job,
                                stage_output,
                                partition: part as u32,
                                copy_executor: ExecutorId(se as u32),
                                copy_won: false,
                                wasted,
                            });
                        }
                    }
                }
                end
            }
        }
    }

    fn earliest_slot(slots: &[SimTime]) -> usize {
        let mut best = 0;
        for (i, &t) in slots.iter().enumerate() {
            if t < slots[best] {
                best = i;
            }
        }
        best
    }

    /// Locality-aware placement: prefer the executor that holds (or last
    /// produced) the output block or any narrow-lineage ancestor of it;
    /// otherwise spread deterministically by partition index. The visited
    /// set keeps diamond-shaped narrow lineage linear instead of
    /// combinatorial.
    fn pick_executor(&self, plan: &Plan, rdd: RddId, part: usize) -> Result<ExecutorId> {
        let mut stack = vec![rdd];
        let mut visited: FxHashSet<RddId> = FxHashSet::default();
        while let Some(cur) = stack.pop() {
            if !visited.insert(cur) {
                continue;
            }
            if let Some(&home) = self.stores.block_home.get(&BlockId::new(cur, part as u32)) {
                return Ok(home);
            }
            for dep in &plan.node(cur)?.deps {
                if let Dep::Narrow(parent) = dep {
                    stack.push(*parent);
                }
            }
        }
        Ok(ExecutorId((part % self.config.executors) as u32))
    }

    // ---- Cache placement --------------------------------------------------

    /// Tries to place `block` in `exec`'s memory store, running the
    /// controller's eviction path if space is needed. Returns true on
    /// success; on failure consults `on_admission_failure`. `trace_at` and
    /// `decision` stamp the trace record (admission vs. promotion) when
    /// tracing is enabled.
    fn try_cache_memory(
        &mut self,
        exec: ExecutorId,
        info: &BlockInfo,
        block: Block,
        charge: &mut TaskCharge,
        trace_at: SimTime,
        decision: CacheDecision,
    ) -> bool {
        let e = exec.raw() as usize;
        let serialized = self.controller.serialized_in_memory();
        let footprint = if serialized {
            info.bytes.scale(self.controller.memory_footprint_factor())
        } else {
            info.bytes
        };

        if !self.stores.mem[e].fits(footprint) {
            let needed = footprint.saturating_sub(self.stores.mem[e].free());
            // Candidates exclude the incoming block's own RDD (Spark rule).
            let resident: Vec<BlockInfo> = self.stores.mem[e]
                .iter()
                .filter(|(bid, _)| bid.rdd != info.id.rdd)
                .map(|(bid, sb)| BlockInfo {
                    id: *bid,
                    bytes: sb.logical_bytes,
                    ser_factor: sb.ser_factor,
                    executor: exec,
                })
                .collect();
            let ctx = self.ctrl_ctx(self.clock_floor);
            let victims = self.controller.choose_victims(&ctx, exec, needed, info, &resident);
            for (vid, action) in victims {
                if vid.rdd == info.id.rdd {
                    continue;
                }
                if self.stores.mem[e].fits(footprint) {
                    break;
                }
                self.evict_one(exec, vid, action, charge, trace_at);
            }
        }

        if self.stores.mem[e].fits(footprint) {
            if serialized {
                // Writing through a serialized external store costs
                // serialization even on the memory tier (§7.1 Alluxio).
                charge.external_store_io +=
                    self.config.hardware.ser_time(info.bytes, info.ser_factor);
            }
            // A re-admission (several tasks regenerating the same block in
            // one stage) replaces the resident entry; only a fresh insert
            // is a trace-worthy decision, keeping admit/evict pairs exact.
            let fresh = !self.stores.mem[e].contains(info.id);
            let ok = self.stores.mem[e].insert(
                info.id,
                StoredBlock {
                    block,
                    logical_bytes: info.bytes,
                    stored_bytes: footprint,
                    ser_factor: info.ser_factor,
                    // Fresh productions always land deserialized (state m);
                    // state s is entered only via solver commands.
                    serialized: false,
                    checksum: None,
                },
            );
            debug_assert!(ok);
            self.stores.block_home.insert(info.id, exec);
            let ctx = self.ctrl_ctx(self.clock_floor);
            self.controller.on_inserted(&ctx, info, StoreTier::Memory);
            if fresh && self.trace.is_some() {
                let why = self.controller.explain_block(info.id);
                if let Some(tr) = self.trace.as_mut() {
                    tr.record(TraceEvent::Cache(CacheRecord {
                        at: trace_at,
                        app: self.current_app,
                        executor: exec,
                        id: info.id,
                        bytes: info.bytes,
                        decision,
                        rationale: why,
                    }));
                }
            }
            let mem_total: ByteSize = self.stores.mem.iter().map(BlockStore::used).sum();
            self.metrics.memory_bytes_peak = self.metrics.memory_bytes_peak.max(mem_total);
            true
        } else {
            let ctx = self.ctrl_ctx(self.clock_floor);
            if self.controller.on_admission_failure(&ctx, info) == Admission::Disk {
                self.spill_to_disk(exec, info, block, charge, trace_at);
            }
            false
        }
    }

    /// Evicts one memory-resident block with the given action. When tracing
    /// is on, the evicting policy's rationale is captured *before* the
    /// decision is applied (its belief about the victim at decision time).
    fn evict_one(
        &mut self,
        exec: ExecutorId,
        vid: BlockId,
        action: VictimAction,
        charge: &mut TaskCharge,
        trace_at: SimTime,
    ) {
        let e = exec.raw() as usize;
        let why = if self.trace.is_some() { self.controller.explain_block(vid) } else { None };
        let Some(sb) = self.stores.mem[e].remove(vid) else { return };
        self.metrics.record_eviction(exec, sb.logical_bytes, action == VictimAction::ToDisk);
        // An eviction is charged against the app that owns the victim, not
        // the app whose admission forced it out.
        let owner = self.block_app.get(&vid).copied().unwrap_or(self.current_app);
        self.metrics.app_metrics(owner).evictions += 1;
        if let Some(tr) = self.trace.as_mut() {
            tr.record(TraceEvent::Cache(CacheRecord {
                at: trace_at,
                app: self.current_app,
                executor: exec,
                id: vid,
                bytes: sb.logical_bytes,
                decision: if action == VictimAction::ToDisk {
                    CacheDecision::EvictToDisk
                } else {
                    CacheDecision::EvictDiscard
                },
                rationale: why,
            }));
        }
        let ctx = self.ctrl_ctx(self.clock_floor);
        self.controller.on_evicted(&ctx, vid);
        if action == VictimAction::ToDisk {
            // An s-state victim is already in serialized form: spilling it
            // pays only the raw disk write, not a second serialization.
            charge.disk_cache_write += if sb.serialized {
                self.config.hardware.disk_write_time(sb.logical_bytes)
            } else {
                self.config.hardware.spill_time(sb.logical_bytes, sb.ser_factor)
            };
            let logical = sb.logical_bytes;
            let checksum = self.stamp_spill(vid, logical, sb.ser_factor);
            let inserted = self.stores.disk[e].insert(
                vid,
                StoredBlock { stored_bytes: logical, serialized: false, checksum, ..sb },
            );
            if inserted {
                self.metrics.disk_bytes_written += logical;
                let info = BlockInfo { id: vid, bytes: logical, ser_factor: 1.0, executor: exec };
                let ctx = self.ctrl_ctx(self.clock_floor);
                self.controller.on_inserted(&ctx, &info, StoreTier::Disk);
            }
        }
    }

    /// Writes a block straight to the disk store (admission or spill).
    fn spill_to_disk(
        &mut self,
        exec: ExecutorId,
        info: &BlockInfo,
        block: Block,
        charge: &mut TaskCharge,
        trace_at: SimTime,
    ) {
        let e = exec.raw() as usize;
        if self.stores.disk[e].contains(info.id) {
            return;
        }
        let stored = StoredBlock {
            block,
            logical_bytes: info.bytes,
            stored_bytes: info.bytes,
            ser_factor: info.ser_factor,
            serialized: false,
            checksum: self.stamp_spill(info.id, info.bytes, info.ser_factor),
        };
        if self.stores.disk[e].insert(info.id, stored) {
            charge.disk_cache_write += self.config.hardware.spill_time(info.bytes, info.ser_factor);
            self.metrics.disk_bytes_written += info.bytes;
            self.stores.block_home.insert(info.id, exec);
            let ctx = self.ctrl_ctx(self.clock_floor);
            self.controller.on_inserted(&ctx, info, StoreTier::Disk);
            if let Some(tr) = self.trace.as_mut() {
                tr.record(TraceEvent::Cache(CacheRecord {
                    at: trace_at,
                    app: self.current_app,
                    executor: exec,
                    id: info.id,
                    bytes: info.bytes,
                    decision: CacheDecision::AdmitDisk,
                    rationale: None,
                }));
            }
        }
    }

    /// Integrity checksum for a block being written to the disk tier, with
    /// the seeded corruption injection applied: the coin of
    /// [`crate::fault::FaultPlan::spill_corrupted`] flips one checksum bit,
    /// which the next read detects and quarantines. Returns `None` (stamp
    /// nothing, verify nothing) while corruption injection is off, keeping
    /// the fault-free path byte-identical. Only called from the serial
    /// commit phase, so the per-block sequence stream is deterministic.
    fn stamp_spill(&mut self, id: BlockId, logical: ByteSize, ser_factor: f64) -> Option<u64> {
        let fault = &self.config.fault;
        if fault.spill_corruption_rate <= 0.0 {
            return None;
        }
        let seq = {
            let counter = self.spill_seq.entry(id).or_insert(0);
            let seq = *counter;
            *counter += 1;
            seq
        };
        let mut ck = spill_checksum(id, logical, ser_factor);
        if self.config.fault.spill_corrupted(id.rdd.raw(), id.partition, seq) {
            ck ^= 1u64 << self.config.fault.corruption_bit(id.rdd.raw(), id.partition, seq);
        }
        Some(ck)
    }

    /// Drops a corrupt disk-tier block detected by checksum mismatch and
    /// attributes the quarantine. A no-op if the block is already gone
    /// (several tasks of one stage may detect the same corruption).
    fn quarantine_spill(&mut self, exec: ExecutorId, id: BlockId, bytes: ByteSize, at: SimTime) {
        let e = exec.raw() as usize;
        if self.stores.disk[e].remove(id).is_none() {
            return;
        }
        self.metrics.recovery.spills_quarantined += 1;
        if let Some(tr) = self.trace.as_mut() {
            tr.record(TraceEvent::SpillQuarantined { at, executor: exec, id, bytes });
        }
    }

    // ---- Off-task state transitions ----------------------------------------

    /// Applies controller-requested state transitions. Data movement charges
    /// disk I/O time and occupies one executor slot, like a small task.
    /// `at` stamps the trace records (the hook's simulated time).
    fn apply_commands(&mut self, _plan: &Plan, at: SimTime, cmds: Vec<StateCommand>) {
        for cmd in cmds {
            match cmd {
                StateCommand::UnpersistRdd(rdd) => {
                    for e in 0..self.config.executors {
                        for (vid, sb) in self.stores.mem[e].remove_rdd(rdd) {
                            let ctx = self.ctrl_ctx(self.clock_floor);
                            self.controller.on_evicted(&ctx, vid);
                            self.trace_unpersist(at, e, vid, sb.logical_bytes, false);
                        }
                        for (vid, sb) in self.stores.disk[e].remove_rdd(rdd) {
                            self.trace_unpersist(at, e, vid, sb.logical_bytes, true);
                        }
                    }
                }
                StateCommand::UnpersistBlock(id) => {
                    for e in 0..self.config.executors {
                        if let Some(sb) = self.stores.mem[e].remove(id) {
                            let ctx = self.ctrl_ctx(self.clock_floor);
                            self.controller.on_evicted(&ctx, id);
                            self.trace_unpersist(at, e, id, sb.logical_bytes, false);
                        }
                        if let Some(sb) = self.stores.disk[e].remove(id) {
                            self.trace_unpersist(at, e, id, sb.logical_bytes, true);
                        }
                    }
                }
                StateCommand::SpillToDisk(id) => {
                    let Some(e) =
                        (0..self.config.executors).find(|&e| self.stores.mem[e].contains(id))
                    else {
                        continue;
                    };
                    let exec = ExecutorId(e as u32);
                    let mut charge = TaskCharge::default();
                    self.evict_one(exec, id, VictimAction::ToDisk, &mut charge, at);
                    self.charge_migration(exec, &charge);
                }
                StateCommand::PromoteToMemory(id) => {
                    let Some(e) =
                        (0..self.config.executors).find(|&e| self.stores.disk[e].contains(id))
                    else {
                        continue;
                    };
                    let Some(sb) = self.stores.disk[e].get(id).cloned() else { continue };
                    // A corrupt spill must not be laundered into memory:
                    // quarantine it here and let lineage re-produce it.
                    if sb
                        .checksum
                        .is_some_and(|ck| ck != spill_checksum(id, sb.logical_bytes, sb.ser_factor))
                    {
                        self.quarantine_spill(ExecutorId(e as u32), id, sb.logical_bytes, at);
                        continue;
                    }
                    if !self.stores.mem[e].fits(sb.stored_bytes) {
                        continue; // Best effort: promotion only into free space.
                    }
                    self.stores.disk[e].remove(id);
                    let mut charge = TaskCharge::default();
                    charge.disk_cache_read +=
                        self.config.hardware.fetch_from_disk_time(sb.logical_bytes, sb.ser_factor);
                    let info = BlockInfo {
                        id,
                        bytes: sb.logical_bytes,
                        ser_factor: sb.ser_factor,
                        executor: ExecutorId(e as u32),
                    };
                    let fresh = !self.stores.mem[e].contains(id);
                    let ok = self.stores.mem[e].insert(id, StoredBlock { checksum: None, ..sb });
                    debug_assert!(ok);
                    let ctx = self.ctrl_ctx(self.clock_floor);
                    self.controller.on_inserted(&ctx, &info, StoreTier::Memory);
                    if fresh {
                        if let Some(tr) = self.trace.as_mut() {
                            tr.record(TraceEvent::Cache(CacheRecord {
                                at,
                                app: self.current_app,
                                executor: info.executor,
                                id,
                                bytes: info.bytes,
                                decision: CacheDecision::PromoteToMemory,
                                rationale: None,
                            }));
                        }
                    }
                    // Prefetch overlaps with computation (MRD's design):
                    // record the I/O but do not block a slot.
                    self.metrics.accumulated.disk_cache_read += charge.disk_cache_read;
                }
                StateCommand::SerializeInMemory(id) => {
                    let Some(e) =
                        (0..self.config.executors).find(|&e| self.stores.mem[e].contains(id))
                    else {
                        continue;
                    };
                    let Some(sb) = self.stores.mem[e].get(id).cloned() else { continue };
                    if sb.serialized {
                        continue;
                    }
                    let scaled = sb.logical_bytes.scale(self.config.hardware.ser_footprint);
                    let mut charge = TaskCharge::default();
                    charge.external_store_io +=
                        self.config.hardware.ser_time(sb.logical_bytes, sb.ser_factor);
                    let logical = sb.logical_bytes;
                    // In-place compaction m -> s: shrinking never fails the
                    // capacity check, and the replacement re-accounts.
                    let ok = self.stores.mem[e]
                        .insert(id, StoredBlock { stored_bytes: scaled, serialized: true, ..sb });
                    debug_assert!(ok);
                    self.metrics.ser_transitions += 1;
                    if let Some(tr) = self.trace.as_mut() {
                        tr.record(TraceEvent::Cache(CacheRecord {
                            at,
                            app: self.current_app,
                            executor: ExecutorId(e as u32),
                            id,
                            bytes: logical,
                            decision: CacheDecision::SerializeInMemory,
                            rationale: None,
                        }));
                    }
                    self.charge_migration(ExecutorId(e as u32), &charge);
                }
                StateCommand::DeserializeInMemory(id) => {
                    let Some(e) =
                        (0..self.config.executors).find(|&e| self.stores.mem[e].contains(id))
                    else {
                        continue;
                    };
                    let Some(sb) = self.stores.mem[e].get(id).cloned() else { continue };
                    if !sb.serialized {
                        continue;
                    }
                    let logical = sb.logical_bytes;
                    // Best effort: expanding back to the full footprint must
                    // fit (the replacement frees the scaled bytes first).
                    if self.stores.mem[e].free() + sb.stored_bytes < logical {
                        continue;
                    }
                    let mut charge = TaskCharge::default();
                    charge.external_store_io +=
                        self.config.hardware.deser_time(logical, sb.ser_factor);
                    let ok = self.stores.mem[e]
                        .insert(id, StoredBlock { stored_bytes: logical, serialized: false, ..sb });
                    debug_assert!(ok);
                    self.metrics.ser_transitions += 1;
                    if let Some(tr) = self.trace.as_mut() {
                        tr.record(TraceEvent::Cache(CacheRecord {
                            at,
                            app: self.current_app,
                            executor: ExecutorId(e as u32),
                            id,
                            bytes: logical,
                            decision: CacheDecision::DeserializeInMemory,
                            rationale: None,
                        }));
                    }
                    self.charge_migration(ExecutorId(e as u32), &charge);
                }
                StateCommand::PromoteToSerializedMemory(id) => {
                    let Some(e) =
                        (0..self.config.executors).find(|&e| self.stores.disk[e].contains(id))
                    else {
                        continue;
                    };
                    let Some(sb) = self.stores.disk[e].get(id).cloned() else { continue };
                    // Same corruption gate as PromoteToMemory.
                    if sb
                        .checksum
                        .is_some_and(|ck| ck != spill_checksum(id, sb.logical_bytes, sb.ser_factor))
                    {
                        self.quarantine_spill(ExecutorId(e as u32), id, sb.logical_bytes, at);
                        continue;
                    }
                    let scaled = sb.logical_bytes.scale(self.config.hardware.ser_footprint);
                    if !self.stores.mem[e].fits(scaled) {
                        continue; // Best effort, like PromoteToMemory.
                    }
                    self.stores.disk[e].remove(id);
                    // d -> s moves the already-serialized bytes: a raw disk
                    // read, no deserialization leg.
                    let mut charge = TaskCharge::default();
                    charge.disk_cache_read += self.config.hardware.disk_read_time(sb.logical_bytes);
                    let info = BlockInfo {
                        id,
                        bytes: sb.logical_bytes,
                        ser_factor: sb.ser_factor,
                        executor: ExecutorId(e as u32),
                    };
                    let fresh = !self.stores.mem[e].contains(id);
                    let ok = self.stores.mem[e].insert(
                        id,
                        StoredBlock {
                            stored_bytes: scaled,
                            serialized: true,
                            checksum: None,
                            ..sb
                        },
                    );
                    debug_assert!(ok);
                    let ctx = self.ctrl_ctx(self.clock_floor);
                    self.controller.on_inserted(&ctx, &info, StoreTier::SerializedMemory);
                    self.metrics.ser_transitions += 1;
                    if fresh {
                        if let Some(tr) = self.trace.as_mut() {
                            tr.record(TraceEvent::Cache(CacheRecord {
                                at,
                                app: self.current_app,
                                executor: info.executor,
                                id,
                                bytes: info.bytes,
                                decision: CacheDecision::PromoteToSerializedMemory,
                                rationale: None,
                            }));
                        }
                    }
                    self.metrics.accumulated.disk_cache_read += charge.disk_cache_read;
                }
            }
        }
    }

    /// Charges a data-movement operation to the executor's least-loaded slot
    /// and to the accumulated metrics.
    fn charge_migration(&mut self, exec: ExecutorId, charge: &TaskCharge) {
        let e = exec.raw() as usize;
        let slot = Self::earliest_slot(&self.slots[e]);
        self.slots[e][slot] = self.slots[e][slot].max(self.clock_floor) + charge.total();
        self.metrics.accumulated.merge(charge);
    }

    /// User-initiated unpersist (the `unpersist()` API): drop everywhere.
    fn user_unpersist(&mut self, rdd: RddId) {
        let at = self.clock_floor;
        for e in 0..self.config.executors {
            for (vid, sb) in self.stores.mem[e].remove_rdd(rdd) {
                let ctx = self.ctrl_ctx(self.clock_floor);
                self.controller.on_evicted(&ctx, vid);
                self.trace_unpersist(at, e, vid, sb.logical_bytes, false);
            }
            for (vid, sb) in self.stores.disk[e].remove_rdd(rdd) {
                self.trace_unpersist(at, e, vid, sb.logical_bytes, true);
            }
        }
    }

    /// Records one unpersist decision (memory or disk tier) when tracing,
    /// and attributes it to the app that owns the block (one count per
    /// tier removal, mirroring the trace records).
    fn trace_unpersist(&mut self, at: SimTime, e: usize, id: BlockId, bytes: ByteSize, disk: bool) {
        let owner = self.block_app.get(&id).copied().unwrap_or(self.current_app);
        self.metrics.app_metrics(owner).unpersists += 1;
        if let Some(tr) = self.trace.as_mut() {
            tr.record(TraceEvent::Cache(CacheRecord {
                at,
                app: self.current_app,
                executor: ExecutorId(e as u32),
                id,
                bytes,
                decision: if disk {
                    CacheDecision::UnpersistDisk
                } else {
                    CacheDecision::UnpersistMemory
                },
                rationale: None,
            }));
        }
    }

    // ---- Fault injection ---------------------------------------------------

    /// Destroys executor `e`'s cached state: memory and disk stores are
    /// wiped (with controller eviction notifications), and — when the
    /// fault plan disables the external shuffle service — every shuffle
    /// output the executor produced. The machine itself is immediately
    /// replaced: subsequent tasks may be placed on the same index again,
    /// they just find its stores empty.
    fn wipe_executor(&mut self, e: usize, at: SimTime) {
        self.metrics.recovery.executor_crashes += 1;
        let exec = ExecutorId(e as u32);
        let mut blocks_lost = 0u64;
        let mut bytes_lost = ByteSize::ZERO;
        let mut record_loss = |st: &mut Self, id: BlockId, bytes: ByteSize, disk: bool| {
            blocks_lost += 1;
            bytes_lost += bytes;
            if let Some(tr) = st.trace.as_mut() {
                tr.record(TraceEvent::Cache(CacheRecord {
                    at,
                    app: st.current_app,
                    executor: exec,
                    id,
                    bytes,
                    decision: if disk {
                        CacheDecision::LostDisk
                    } else {
                        CacheDecision::LostMemory
                    },
                    rationale: None,
                }));
            }
        };
        let mem_ids: Vec<BlockId> = self.stores.mem[e].iter().map(|(id, _)| *id).collect();
        for id in mem_ids {
            if let Some(sb) = self.stores.mem[e].remove(id) {
                self.note_block_lost(id, sb.logical_bytes);
                record_loss(self, id, sb.logical_bytes, false);
            }
        }
        let disk_ids: Vec<BlockId> = self.stores.disk[e].iter().map(|(id, _)| *id).collect();
        for id in disk_ids {
            if let Some(sb) = self.stores.disk[e].remove(id) {
                self.note_block_lost(id, sb.logical_bytes);
                record_loss(self, id, sb.logical_bytes, true);
            }
        }
        let mut map_outputs_lost = 0u64;
        if !self.config.fault.external_shuffle_service {
            let lost = self.stores.shuffle.drop_by_producer(exec);
            map_outputs_lost = lost.len() as u64;
            self.metrics.recovery.map_outputs_lost += map_outputs_lost;
            if let Some(tr) = self.trace.as_mut() {
                for ((child, dep_idx), map_part) in lost {
                    tr.record(TraceEvent::MapOutputLost {
                        at,
                        child,
                        dep_idx: dep_idx as u32,
                        map_part: map_part as u32,
                    });
                }
            }
        }
        if let Some(tr) = self.trace.as_mut() {
            tr.record(TraceEvent::ExecutorCrashed {
                at,
                executor: exec,
                blocks_lost,
                bytes_lost,
                map_outputs_lost,
            });
        }
    }

    /// Records one cached block destroyed by executor loss. The eviction
    /// notification lets stateful controllers drop their residency belief;
    /// clearing `materialized_once` keeps the later rebuild classified as
    /// recovery work rather than a policy-caused recomputation.
    fn note_block_lost(&mut self, id: BlockId, bytes: ByteSize) {
        let ctx = self.ctrl_ctx(self.clock_floor);
        self.controller.on_evicted(&ctx, id);
        self.stores.block_home.remove(&id);
        self.stores.materialized_once.remove(&id);
        self.stores.lost_blocks.insert(id);
        self.metrics.recovery.blocks_lost += 1;
        self.metrics.recovery.bytes_lost += bytes;
    }

    /// Fires every scheduled crash whose time has passed while the cluster
    /// was idle (between jobs). Crashes are validated time-ordered and each
    /// fires exactly once.
    fn fire_idle_crashes(&mut self, now: SimTime) {
        while let Some(&crash) = self.config.fault.crashes.get(self.next_crash) {
            if crash.at > now {
                break;
            }
            self.next_crash += 1;
            self.wipe_executor(crash.executor, crash.at);
        }
    }

    /// Fires crashes that became due during a stage, at the task-commit
    /// boundary: the dead executor's stores are wiped and every not-yet-
    /// committed task placed on it is lost and re-executed on the next
    /// surviving executor (against the post-crash state, continuing the
    /// task's attempt sequence).
    #[allow(clippy::too_many_arguments)]
    fn handle_due_crashes(
        &mut self,
        plan: &Plan,
        job: JobId,
        stage_output: RddId,
        stage_index: u32,
        stage_consumers: &[(RddId, usize)],
        placements: &mut [ExecutorId],
        outputs: &mut [Option<Result<TaskOutput>>],
        next_commit: usize,
        now: SimTime,
    ) {
        while let Some(&crash) = self.config.fault.crashes.get(self.next_crash) {
            if crash.at > now {
                break;
            }
            self.next_crash += 1;
            let e = crash.executor;
            self.wipe_executor(e, crash.at);

            for q in next_commit..outputs.len() {
                if placements[q].raw() as usize != e {
                    continue;
                }
                let Some(prev) = outputs[q].take() else { continue };
                let prev = match prev {
                    Ok(prev) => prev,
                    Err(err) => {
                        // Already-failed tasks stay failed; the job aborts
                        // at their commit slot as before.
                        outputs[q] = Some(Err(err));
                        continue;
                    }
                };
                // The in-flight attempt dies with the executor; its prior
                // failed attempts (if any) replay unchanged.
                let mut prior: Vec<TaskEvent> = prev
                    .events
                    .into_iter()
                    .filter(|ev| matches!(ev, TaskEvent::Failed { .. }))
                    .collect();
                prior.push(TaskEvent::Failed {
                    attempt: prior.len() as u32,
                    cause: FaultCause::ExecutorLost,
                    wasted: prev.charge.total(),
                });
                let survivor = ExecutorId(((e + 1) % self.config.executors) as u32);
                placements[q] = survivor;
                let base_attempt = prior.len() as u32;
                let view = ExecView {
                    stores: &self.stores,
                    config: &self.config,
                    serialized_in_memory: self.controller.serialized_in_memory(),
                    fault_coords: Some((job, stage_index)),
                };
                let rerun = execute_task(
                    &view,
                    plan,
                    stage_output,
                    q,
                    survivor,
                    stage_consumers,
                    base_attempt,
                );
                outputs[q] = Some(rerun.map(|mut out| {
                    prior.extend(std::mem::take(&mut out.events));
                    out.events = prior;
                    out
                }));
            }
        }
    }

    /// Draws the per-job map-output-loss coin over every registered shuffle
    /// output (in sorted key order, so draws are independent of hash-map
    /// iteration order). Only active without an external shuffle service.
    fn inject_map_output_loss(&mut self, job: JobId) {
        if self.config.fault.external_shuffle_service
            || self.config.fault.map_output_loss_rate <= 0.0
        {
            return;
        }
        for ((child, dep_idx), map_part) in self.stores.shuffle.keys_sorted() {
            if self.config.fault.map_output_lost(job.raw(), child.raw(), dep_idx, map_part)
                && self.stores.shuffle.drop_map_output((child, dep_idx), map_part)
            {
                self.metrics.recovery.map_outputs_lost += 1;
                if let Some(tr) = self.trace.as_mut() {
                    tr.record(TraceEvent::MapOutputLost {
                        at: self.clock_floor,
                        child,
                        dep_idx: dep_idx as u32,
                        map_part: map_part as u32,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::NoCacheController;
    use blaze_dataflow::Context;

    fn cluster(controller: Box<dyn CacheController>) -> (Context, Cluster) {
        let config = ClusterConfig {
            executors: 2,
            slots_per_executor: 2,
            memory_capacity: ByteSize::from_kib(64),
            ..Default::default()
        };
        let cluster = Cluster::new(config, controller).unwrap();
        (Context::new(cluster.clone()), cluster)
    }

    /// A controller that caches everything it can in memory, LRU-free
    /// (evicts nothing): admission simply fails when memory is full.
    #[derive(Default)]
    struct GreedyMem;
    impl CacheController for GreedyMem {
        fn name(&self) -> String {
            "GreedyMem".into()
        }
        fn should_cache(&mut self, _: &CtrlCtx, _: &BlockInfo, _annotated: bool) -> bool {
            true
        }
    }

    /// A caching-everything controller with insertion-order eviction
    /// (alternating spill/discard) and a self-explaining rationale — enough
    /// to exercise every cache-decision kind in the trace tests.
    #[derive(Default)]
    struct EvictingLru {
        order: Vec<BlockId>,
    }
    impl CacheController for EvictingLru {
        fn name(&self) -> String {
            "EvictingLru".into()
        }
        fn should_cache(&mut self, _: &CtrlCtx, _: &BlockInfo, _annotated: bool) -> bool {
            true
        }
        fn choose_victims(
            &mut self,
            _ctx: &CtrlCtx,
            _exec: ExecutorId,
            _needed: ByteSize,
            _incoming: &BlockInfo,
            resident: &[BlockInfo],
        ) -> Vec<(BlockId, VictimAction)> {
            let mut ids: Vec<BlockId> = resident.iter().map(|b| b.id).collect();
            ids.sort_unstable_by_key(|id| self.order.iter().position(|o| o == id));
            ids.into_iter()
                .enumerate()
                .map(|(i, id)| {
                    (id, if i % 2 == 0 { VictimAction::ToDisk } else { VictimAction::Discard })
                })
                .collect()
        }
        fn on_admission_failure(&mut self, _: &CtrlCtx, _: &BlockInfo) -> Admission {
            Admission::Disk
        }
        fn readmit_after_disk_read(&mut self, _: &CtrlCtx, _: &BlockInfo) -> Admission {
            Admission::Memory
        }
        fn explain_block(&self, id: BlockId) -> Option<String> {
            self.order.iter().position(|o| *o == id).map(|p| format!("lru: position {p}"))
        }
        fn on_inserted(&mut self, _: &CtrlCtx, info: &BlockInfo, tier: StoreTier) {
            if tier.in_memory() && !self.order.contains(&info.id) {
                self.order.push(info.id);
            }
        }
        fn on_evicted(&mut self, _: &CtrlCtx, id: BlockId) {
            self.order.retain(|o| *o != id);
        }
        fn on_access(&mut self, _: &CtrlCtx, id: BlockId) {
            if let Some(p) = self.order.iter().position(|o| *o == id) {
                let b = self.order.remove(p);
                self.order.push(b);
            }
        }
    }

    #[test]
    fn computes_correct_results() {
        let (ctx, _cluster) = cluster(Box::new(NoCacheController));
        let ds = ctx.range(0..1000, 8);
        let sum: u64 = ds.map(|x| x * 2).collect().unwrap().into_iter().sum();
        assert_eq!(sum, 999 * 1000);
    }

    #[test]
    fn shuffle_through_engine_is_correct() {
        let (ctx, _cluster) = cluster(Box::new(NoCacheController));
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i % 4, i)).collect();
        let mut out = ctx.parallelize(pairs, 4).reduce_by_key(2, |a, b| a + b).collect().unwrap();
        out.sort();
        let expected: Vec<(u64, u64)> =
            (0..4).map(|k| (k, (0..100).filter(|i| i % 4 == k).sum::<u64>())).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn simulated_time_advances_and_is_deterministic() {
        let run = || {
            let (ctx, cluster) = cluster(Box::new(NoCacheController));
            let ds = ctx.range(0..10_000, 8).map(|x| x + 1);
            ds.count().unwrap();
            cluster.metrics().completion_time
        };
        let t1 = run();
        let t2 = run();
        assert!(t1 > SimTime::ZERO);
        assert_eq!(t1, t2);
    }

    #[test]
    fn caching_avoids_recomputation() {
        // Without caching, a reused dataset recomputes; with caching it hits.
        let (ctx, cl) = cluster(Box::new(GreedyMem));
        let ds = ctx.range(0..1000, 4).map(|x| x * 3);
        ds.cache();
        ds.count().unwrap();
        ds.count().unwrap();
        let m = cl.metrics();
        assert!(m.mem_hits >= 4, "expected memory hits on second job, got {}", m.mem_hits);
        assert_eq!(m.total_recompute_time(), SimDuration::ZERO);

        let (ctx2, cl2) = cluster(Box::new(NoCacheController));
        let ds2 = ctx2.range(0..1000, 4).map(|x| x * 3);
        ds2.cache();
        ds2.count().unwrap();
        ds2.count().unwrap();
        let m2 = cl2.metrics();
        assert_eq!(m2.mem_hits, 0);
        assert!(m2.total_recompute_time() > SimDuration::ZERO);
        // Recomputation makes the uncached run slower.
        assert!(m2.completion_time > cl.metrics().completion_time);
    }

    #[test]
    fn map_stages_are_skipped_when_shuffle_outputs_exist() {
        let (ctx, cl) = cluster(Box::new(NoCacheController));
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i % 4, i)).collect();
        let reduced = ctx.parallelize(pairs, 4).reduce_by_key(2, |a, b| a + b);
        reduced.count().unwrap();
        assert_eq!(cl.metrics().stages_skipped, 0);
        reduced.count().unwrap();
        // Second job skips the map stage: shuffle outputs persist.
        assert_eq!(cl.metrics().stages_skipped, 1);
    }

    /// Caches exactly the annotated datasets (no eviction support).
    #[derive(Default)]
    struct ObeyAnnotations;
    impl CacheController for ObeyAnnotations {
        fn name(&self) -> String {
            "ObeyAnnotations".into()
        }
    }

    #[test]
    fn unpersist_drops_cached_blocks() {
        let (ctx, cl) = cluster(Box::new(ObeyAnnotations));
        let ds = ctx.range(0..100, 2).map(|x| x + 1);
        ds.cache();
        ds.count().unwrap();
        assert!(cl.memory_used().iter().any(|b| !b.is_zero()));
        ds.unpersist();
        assert!(cl.memory_used().iter().all(|b| b.is_zero()));
    }

    #[test]
    fn admission_failure_skips_by_default() {
        // Memory too small for the dataset: GreedyMem never evicts, so some
        // blocks are simply not cached; run still completes correctly.
        let config = ClusterConfig {
            executors: 1,
            slots_per_executor: 1,
            memory_capacity: ByteSize::from_kib(2),
            ..Default::default()
        };
        let cl = Cluster::new(config, Box::new(GreedyMem)).unwrap();
        let ctx = Context::new(cl.clone());
        let ds = ctx.range(0..10_000, 4); // ~80KB total
        ds.cache();
        assert_eq!(ds.count().unwrap(), 10_000);
        let used = cl.memory_used()[0];
        assert!(used <= ByteSize::from_kib(2));
    }

    #[test]
    fn tasks_spread_across_executors() {
        let (ctx, cl) = cluster(Box::new(GreedyMem));
        let ds = ctx.range(0..1000, 4).map(|x| x + 1);
        ds.cache();
        ds.count().unwrap();
        let used = cl.memory_used();
        assert!(used.iter().filter(|b| !b.is_zero()).count() >= 2, "{used:?}");
    }

    #[test]
    fn full_disk_store_degrades_gracefully() {
        // Disk capacity smaller than one block: spills fail, data is
        // simply dropped, and results stay correct.
        let config = ClusterConfig {
            executors: 1,
            slots_per_executor: 1,
            memory_capacity: ByteSize::from_kib(4),
            disk_capacity: ByteSize::from_bytes(16),
            ..Default::default()
        };
        /// LRU-free MEM+DISK-style controller: always spills on failure.
        struct SpillHappy;
        impl CacheController for SpillHappy {
            fn name(&self) -> String {
                "SpillHappy".into()
            }
            fn should_cache(&mut self, _: &CtrlCtx, _: &BlockInfo, _a: bool) -> bool {
                true
            }
            fn on_admission_failure(
                &mut self,
                _: &CtrlCtx,
                _: &BlockInfo,
            ) -> crate::controller::Admission {
                crate::controller::Admission::Disk
            }
        }
        let cl = Cluster::new(config, Box::new(SpillHappy)).unwrap();
        let ctx = Context::new(cl.clone());
        let ds = ctx.range(0..5_000, 4).map(|x| x * 2);
        ds.cache();
        let total: u64 = ds.collect().unwrap().into_iter().sum();
        assert_eq!(total, (0..5_000u64).map(|x| x * 2).sum::<u64>());
        // Nothing could actually persist on the 16-byte disk.
        assert!(cl.disk_used()[0] <= ByteSize::from_bytes(16));
    }

    #[test]
    fn skipped_stages_still_notify_the_controller() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        struct CountStages(Arc<AtomicU32>);
        impl CacheController for CountStages {
            fn name(&self) -> String {
                "CountStages".into()
            }
            fn on_stage_complete(
                &mut self,
                _: &CtrlCtx,
                _: blaze_common::ids::RddId,
                _: JobId,
                _: &Plan,
            ) -> Vec<StateCommand> {
                self.0.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
        let count = Arc::new(AtomicU32::new(0));
        let (ctx, cl) = {
            let config = ClusterConfig { executors: 2, ..Default::default() };
            let cl = Cluster::new(config, Box::new(CountStages(Arc::clone(&count)))).unwrap();
            (Context::new(cl.clone()), cl)
        };
        let pairs: Vec<(u64, u64)> = (0..50).map(|i| (i % 4, i)).collect();
        let reduced = ctx.parallelize(pairs, 4).reduce_by_key(2, |a, b| a + b);
        reduced.count().unwrap(); // 2 stages run.
        reduced.count().unwrap(); // 1 skipped + 1 run.
        assert_eq!(cl.metrics().stages_skipped, 1);
        assert_eq!(count.load(Ordering::Relaxed), 4, "skipped stage must notify too");
    }

    #[test]
    fn task_traces_cover_the_whole_run() {
        let (ctx, cl) = cluster(Box::new(NoCacheController));
        let ds = ctx.range(0..500, 4).map(|x| x + 1);
        ds.count().unwrap();
        let m = cl.metrics();
        assert_eq!(m.task_traces.len() as u64, m.tasks);
        for t in &m.task_traces {
            assert!(t.end >= t.start);
            assert_eq!(t.duration(), t.charge.total());
        }
        // Busy time sums to the accumulated task time.
        let busy: blaze_common::SimDuration = m.busy_time_per_executor().values().copied().sum();
        assert_eq!(busy, m.accumulated.total());
    }

    #[test]
    fn zero_config_is_rejected() {
        let config = ClusterConfig { executors: 0, ..Default::default() };
        assert!(Cluster::new(config, Box::new(NoCacheController)).is_err());
    }

    /// The tentpole guarantee: metrics (and therefore ACT and all policy
    /// behaviour) are bit-identical across worker-thread counts.
    #[test]
    fn worker_thread_count_does_not_change_metrics() {
        let run = |threads: usize| {
            let config = ClusterConfig {
                executors: 2,
                slots_per_executor: 2,
                memory_capacity: ByteSize::from_kib(16),
                worker_threads: threads,
                ..Default::default()
            };
            let cl = Cluster::new(config, Box::new(GreedyMem)).unwrap();
            let ctx = Context::new(cl.clone());
            let pairs: Vec<(u64, u64)> = (0..2_000).map(|i| (i % 16, i)).collect();
            let ds = ctx.parallelize(pairs, 8).reduce_by_key(4, |a, b| a + b);
            ds.cache();
            ds.count().unwrap();
            let mut out = ds.map_values(|v| v + 1).collect().unwrap();
            out.sort();
            (out, cl.metrics())
        };
        let (r1, m1) = run(1);
        for threads in [2, 4, 7] {
            let (rn, mn) = run(threads);
            assert_eq!(r1, rn, "results diverged at {threads} threads");
            assert_eq!(m1, mn, "metrics diverged at {threads} threads");
        }
    }

    /// The tracing contract end to end: with tracing on, a run that caches,
    /// evicts, hits and recomputes yields a log that (a) validates cleanly
    /// against the metrics, (b) is byte-identical across worker_threads,
    /// and (c) leaves metrics byte-identical to a tracing-off run.
    #[test]
    fn trace_validates_and_is_thread_count_invariant() {
        let run = |threads: usize, tracing: bool| {
            let config = ClusterConfig {
                executors: 2,
                slots_per_executor: 2,
                memory_capacity: ByteSize::from_kib(16),
                worker_threads: threads,
                tracing,
                ..Default::default()
            };
            let cl = Cluster::new(config, Box::new(EvictingLru::default())).unwrap();
            let ctx = Context::new(cl.clone());
            let pairs: Vec<(u64, u64)> = (0..2_000).map(|i| (i % 16, i)).collect();
            let ds = ctx.parallelize(pairs, 8).reduce_by_key(4, |a, b| a + b);
            ds.cache();
            ds.count().unwrap();
            let extra = ds.map_values(|v| v * 3);
            extra.cache();
            extra.count().unwrap();
            ds.count().unwrap();
            (cl.metrics(), cl.trace())
        };
        let (m1, t1) = run(1, true);
        let t1 = t1.expect("tracing enabled");
        assert!(!t1.events().is_empty());
        let report = t1.validate(&m1);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        for threads in [2, 4] {
            let (mn, tn) = run(threads, true);
            assert_eq!(m1, mn, "metrics diverged at {threads} threads");
            assert_eq!(
                t1.chrome_json(),
                tn.expect("tracing enabled").chrome_json(),
                "trace diverged at {threads} threads"
            );
        }
        let (m_off, t_off) = run(1, false);
        assert!(t_off.is_none());
        assert_eq!(m1, m_off, "tracing changed engine behaviour");
    }

    #[test]
    fn trace_validates_under_faults() {
        use crate::fault::{ExecutorCrash, FaultPlan};
        let config = ClusterConfig {
            executors: 2,
            slots_per_executor: 2,
            memory_capacity: ByteSize::from_kib(16),
            worker_threads: 2,
            tracing: true,
            fault: FaultPlan {
                task_failure_rate: 0.05,
                crashes: vec![ExecutorCrash {
                    at: SimTime::ZERO + SimDuration::from_micros(50),
                    executor: 0,
                }],
                external_shuffle_service: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let cl = Cluster::new(config, Box::new(EvictingLru::default())).unwrap();
        let ctx = Context::new(cl.clone());
        let pairs: Vec<(u64, u64)> = (0..2_000).map(|i| (i % 16, i)).collect();
        let ds = ctx.parallelize(pairs, 8).reduce_by_key(4, |a, b| a + b);
        ds.cache();
        ds.count().unwrap();
        ds.count().unwrap();
        let trace = cl.trace().expect("tracing enabled");
        let metrics = cl.metrics();
        assert!(metrics.recovery.executor_crashes > 0);
        let report = trace.validate(&metrics);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }
}
