//! Cluster and hardware-model configuration.
//!
//! The paper evaluates on 11 r5a.2xlarge instances (one master, ten workers,
//! two executors each) with gp2 SSDs (§7.1). We reproduce that topology at
//! laptop scale: the executor count, slot count, memory-store capacity and
//! the throughput constants below are the knobs that define the simulated
//! performance model. Defaults are calibrated so that the *ratios* between
//! compute, (de)serialization, disk and network costs match a commodity
//! cloud node (SSD ~200 MB/s sustained, ~1 GB/s effective network per
//! executor, serialization slower than raw disk bandwidth).

use crate::fault::FaultPlan;
use blaze_common::error::{BlazeError, Result};
use blaze_common::{ByteSize, SimDuration};

/// Throughput constants of the simulated hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareModel {
    /// Sequential disk write throughput in bytes/second.
    pub disk_write_bps: f64,
    /// Sequential disk read throughput in bytes/second.
    pub disk_read_bps: f64,
    /// Serialization throughput in bytes/second (memory -> wire/disk form).
    pub ser_bps: f64,
    /// Deserialization throughput in bytes/second.
    pub deser_bps: f64,
    /// Per-executor effective network throughput in bytes/second.
    pub network_bps: f64,
    /// Footprint factor of the serialized in-memory representation: an
    /// s-state block occupies `logical_bytes × ser_footprint` in the memory
    /// store (Alluxio-style packed bytes, §7.2). Must be in (0, 1].
    pub ser_footprint: f64,
}

impl Default for HardwareModel {
    fn default() -> Self {
        Self {
            disk_write_bps: 180.0e6,
            disk_read_bps: 220.0e6,
            // JVM object serialization is far slower than raw disk
            // bandwidth; these rates make (de)serialization the dominant
            // part of cache disk I/O, as the paper measures (Fig. 4).
            ser_bps: 120.0e6,
            deser_bps: 160.0e6,
            network_bps: 1.0e9,
            // Packed serialized rows are ~40% smaller than the object graph
            // (§7.2's Alluxio regime).
            ser_footprint: 0.6,
        }
    }
}

impl HardwareModel {
    /// Time to serialize `bytes` of data with the given type factor.
    ///
    /// A negative `ser_factor` is a plan-construction bug: it is rejected at
    /// preflight by the `BA009` audit, so it must never reach cost math,
    /// where it would produce negative durations.
    pub fn ser_time(&self, bytes: ByteSize, ser_factor: f64) -> SimDuration {
        debug_assert!(ser_factor >= 0.0, "negative ser_factor {ser_factor} reached ser_time");
        SimDuration::from_secs_f64(bytes.as_bytes() as f64 * ser_factor / self.ser_bps)
    }

    /// Time to deserialize `bytes` of data with the given type factor.
    ///
    /// See [`Self::ser_time`] on why `ser_factor` is not clamped here.
    pub fn deser_time(&self, bytes: ByteSize, ser_factor: f64) -> SimDuration {
        debug_assert!(ser_factor >= 0.0, "negative ser_factor {ser_factor} reached deser_time");
        SimDuration::from_secs_f64(bytes.as_bytes() as f64 * ser_factor / self.deser_bps)
    }

    /// Time to write `bytes` to disk (raw I/O, excluding serialization).
    pub fn disk_write_time(&self, bytes: ByteSize) -> SimDuration {
        SimDuration::from_secs_f64(bytes.as_bytes() as f64 / self.disk_write_bps)
    }

    /// Time to read `bytes` from disk (raw I/O, excluding deserialization).
    pub fn disk_read_time(&self, bytes: ByteSize) -> SimDuration {
        SimDuration::from_secs_f64(bytes.as_bytes() as f64 / self.disk_read_bps)
    }

    /// Time to transfer `bytes` over the network.
    pub fn network_time(&self, bytes: ByteSize) -> SimDuration {
        SimDuration::from_secs_f64(bytes.as_bytes() as f64 / self.network_bps)
    }

    /// Full cost of spilling a block to disk: serialize + write.
    ///
    /// This is the write half of the paper's disk cost (Eq. 3); data
    /// (de)serialization is included in disk I/O time as in Fig. 4.
    pub fn spill_time(&self, bytes: ByteSize, ser_factor: f64) -> SimDuration {
        self.ser_time(bytes, ser_factor) + self.disk_write_time(bytes)
    }

    /// Full cost of recovering a block from disk: read + deserialize.
    pub fn fetch_from_disk_time(&self, bytes: ByteSize, ser_factor: f64) -> SimDuration {
        self.disk_read_time(bytes) + self.deser_time(bytes, ser_factor)
    }
}

/// How a multi-app session interleaves the stages of its applications
/// (see `blaze_engine::session`). Like `FaultPlan`, everything is a pure
/// function of the seed and the simulated clock, so multi-app traces are
/// byte-identical across `worker_threads` and repeated runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Cycle through the live applications in a seeded permutation of their
    /// admission order.
    #[default]
    RoundRobin,
    /// Hand the turn to the live application with the least accumulated
    /// simulated stage time (outstanding-cost fair share); ties break
    /// toward the smallest application id.
    FairShare,
}

/// Deterministic multi-app scheduling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerConfig {
    /// Interleaving policy at stage/job boundaries.
    pub policy: SchedPolicy,
    /// Seed for the round-robin permutation (ignored by fair share).
    pub seed: u64,
}

/// Configuration of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of executors.
    pub executors: usize,
    /// Concurrent task slots per executor (vCPUs devoted to tasks).
    pub slots_per_executor: usize,
    /// Memory-store capacity per executor (the cache budget, not total
    /// executor memory; cf. the paper's empirical 34% bound, §7.1).
    pub memory_capacity: ByteSize,
    /// Disk-store capacity per executor ("abundant" in the paper, §5.5).
    pub disk_capacity: ByteSize,
    /// Simulated hardware throughput model.
    pub hardware: HardwareModel,
    /// Real OS threads used to execute a stage's tasks in parallel.
    ///
    /// This only affects wall-clock time: metrics, simulated completion
    /// time and every cache decision are bit-identical for any value (see
    /// the plan/execute/commit pipeline in `cluster.rs`). Defaults to the
    /// host's available parallelism.
    pub worker_threads: usize,
    /// Strict preflight auditing: warning-severity diagnostics from the
    /// `blaze-audit` plan auditor (caching anti-patterns) abort the job
    /// instead of only being counted in [`crate::metrics::Metrics`].
    pub strict_audit: bool,
    /// Deterministic fault-injection schedule. The default plan is fully
    /// disabled and the engine takes no fault path at all (zero cost;
    /// byte-identical results and metrics to a build without the feature).
    pub fault: FaultPlan,
    /// Structured event tracing (see [`crate::tracing`]). Off by default;
    /// like the fault plan, the disabled state takes no tracing path at
    /// all, so measured runs pay zero cost. When on, the engine records a
    /// deterministic [`crate::tracing::TraceLog`] retrievable via
    /// [`crate::cluster::Cluster::trace`].
    pub tracing: bool,
    /// Multi-app interleaving policy and seed (see
    /// [`crate::session::Turnstile`]). Irrelevant when a single
    /// application drives the cluster.
    pub scheduler: SchedulerConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            executors: 4,
            slots_per_executor: 2,
            memory_capacity: ByteSize::from_mib(64),
            disk_capacity: ByteSize::from_gib(8),
            hardware: HardwareModel::default(),
            worker_threads: default_worker_threads(),
            strict_audit: false,
            fault: FaultPlan::default(),
            tracing: false,
            scheduler: SchedulerConfig::default(),
        }
    }
}

/// Host parallelism, or 1 when it cannot be determined.
pub fn default_worker_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl ClusterConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.executors == 0 {
            return Err(BlazeError::Config("executors must be > 0".into()));
        }
        if self.slots_per_executor == 0 {
            return Err(BlazeError::Config("slots_per_executor must be > 0".into()));
        }
        if self.memory_capacity.is_zero() {
            return Err(BlazeError::Config("memory_capacity must be > 0".into()));
        }
        if self.worker_threads == 0 {
            return Err(BlazeError::Config("worker_threads must be > 0".into()));
        }
        let hw = &self.hardware;
        for (name, v) in [
            ("disk_write_bps", hw.disk_write_bps),
            ("disk_read_bps", hw.disk_read_bps),
            ("ser_bps", hw.ser_bps),
            ("deser_bps", hw.deser_bps),
            ("network_bps", hw.network_bps),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(BlazeError::Config(format!("{name} must be positive, got {v}")));
            }
        }
        let fp = hw.ser_footprint;
        if !fp.is_finite() || fp <= 0.0 || fp > 1.0 {
            return Err(BlazeError::Config(format!("ser_footprint must be in (0, 1], got {fp}")));
        }
        self.fault.validate(self.executors)?;
        Ok(())
    }

    /// Aggregate memory-store capacity across the cluster.
    pub fn total_memory(&self) -> ByteSize {
        self.memory_capacity * self.executors as u64
    }

    /// A typed builder that validates at `build()` time instead of first use.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }
}

/// Typed builder for [`ClusterConfig`].
///
/// `build()` runs the full preflight validation ([`ClusterConfig::validate`],
/// which includes `FaultPlan::validate` against the configured executor
/// count), so an inconsistent configuration surfaces as an error where it
/// was written instead of at the first job submission.
#[derive(Debug, Clone, Default)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Starts from an existing configuration.
    pub fn from_config(config: ClusterConfig) -> Self {
        Self { config }
    }

    /// Sets the executor count.
    #[must_use]
    pub fn executors(mut self, executors: usize) -> Self {
        self.config.executors = executors;
        self
    }

    /// Sets the task slots per executor.
    #[must_use]
    pub fn slots_per_executor(mut self, slots: usize) -> Self {
        self.config.slots_per_executor = slots;
        self
    }

    /// Sets the per-executor memory-store capacity.
    #[must_use]
    pub fn memory_capacity(mut self, capacity: ByteSize) -> Self {
        self.config.memory_capacity = capacity;
        self
    }

    /// Sets the per-executor disk-store capacity.
    #[must_use]
    pub fn disk_capacity(mut self, capacity: ByteSize) -> Self {
        self.config.disk_capacity = capacity;
        self
    }

    /// Sets the hardware throughput model.
    #[must_use]
    pub fn hardware(mut self, hardware: HardwareModel) -> Self {
        self.config.hardware = hardware;
        self
    }

    /// Sets the real worker-thread count.
    #[must_use]
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.config.worker_threads = threads;
        self
    }

    /// Enables strict preflight auditing.
    #[must_use]
    pub fn strict_audit(mut self, strict: bool) -> Self {
        self.config.strict_audit = strict;
        self
    }

    /// Installs a fault-injection schedule.
    #[must_use]
    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.config.fault = fault;
        self
    }

    /// Enables structured event tracing.
    #[must_use]
    pub fn tracing(mut self, tracing: bool) -> Self {
        self.config.tracing = tracing;
        self
    }

    /// Sets the multi-app scheduler policy and seed.
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.config.scheduler = scheduler;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ClusterConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ClusterConfig::default().validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = ClusterConfig { executors: 0, ..Default::default() };
        assert!(c.validate().is_err());
        let c = ClusterConfig { memory_capacity: ByteSize::ZERO, ..Default::default() };
        assert!(c.validate().is_err());
        let c = ClusterConfig {
            hardware: HardwareModel { disk_read_bps: 0.0, ..Default::default() },
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ClusterConfig {
            hardware: HardwareModel { network_bps: f64::NAN, ..Default::default() },
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ClusterConfig { worker_threads: 0, ..Default::default() };
        assert!(c.validate().is_err());
        for bad in [0.0, -0.3, 1.5, f64::NAN] {
            let c = ClusterConfig {
                hardware: HardwareModel { ser_footprint: bad, ..Default::default() },
                ..Default::default()
            };
            assert!(c.validate().is_err(), "ser_footprint {bad} must be rejected");
        }
    }

    #[test]
    fn fault_plan_is_validated_with_the_config() {
        use crate::fault::{ExecutorCrash, FaultPlan};
        use blaze_common::SimTime;
        let bad = ClusterConfig {
            fault: FaultPlan { task_failure_rate: 0.1, max_task_retries: 0, ..Default::default() },
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        // A crash targeting executor >= executors is rejected with the
        // config's own executor count.
        let out_of_range = ClusterConfig {
            executors: 2,
            fault: FaultPlan {
                crashes: vec![ExecutorCrash { at: SimTime::ZERO, executor: 2 }],
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(out_of_range.validate().is_err());
        let ok = ClusterConfig {
            fault: FaultPlan { task_failure_rate: 0.05, ..Default::default() },
            ..Default::default()
        };
        ok.validate().unwrap();
    }

    #[test]
    fn builder_validates_at_build_time() {
        let built = ClusterConfig::builder()
            .executors(2)
            .slots_per_executor(3)
            .memory_capacity(ByteSize::from_mib(64))
            .worker_threads(2)
            .tracing(true)
            .build()
            .unwrap();
        assert_eq!(built.executors, 2);
        assert_eq!(built.slots_per_executor, 3);
        assert_eq!(built.memory_capacity, ByteSize::from_mib(64));
        assert!(built.tracing);

        // The same preflight checks as `validate()`, but at build time.
        assert!(ClusterConfig::builder().executors(0).build().is_err());
        assert!(ClusterConfig::builder().worker_threads(0).build().is_err());
    }

    #[test]
    fn builder_runs_fault_plan_validation() {
        use crate::fault::FaultPlan;
        let bad = FaultPlan { task_failure_rate: 0.1, max_task_retries: 0, ..Default::default() };
        assert!(ClusterConfig::builder().fault(bad).build().is_err());
    }

    #[test]
    fn builder_from_config_round_trips() {
        let base = ClusterConfig { executors: 7, ..Default::default() };
        let rebuilt = ClusterConfigBuilder::from_config(base.clone())
            .scheduler(SchedulerConfig { policy: SchedPolicy::FairShare, seed: 3 })
            .build()
            .unwrap();
        assert_eq!(rebuilt.executors, 7);
        assert_eq!(rebuilt.scheduler.policy, SchedPolicy::FairShare);
        assert_eq!(rebuilt.scheduler.seed, 3);
        assert_eq!(base.scheduler, SchedulerConfig::default());
    }

    #[test]
    fn default_worker_threads_is_positive() {
        assert!(default_worker_threads() >= 1);
        assert!(ClusterConfig::default().worker_threads >= 1);
    }

    #[test]
    fn hardware_times_scale_with_bytes() {
        let hw = HardwareModel::default();
        let one = hw.disk_write_time(ByteSize::from_mib(1));
        let ten = hw.disk_write_time(ByteSize::from_mib(10));
        assert!(ten.as_secs_f64() > 9.0 * one.as_secs_f64());
        assert!(ten.as_secs_f64() < 11.0 * one.as_secs_f64());
    }

    #[test]
    fn ser_factor_scales_serialization_only() {
        let hw = HardwareModel::default();
        let plain = hw.spill_time(ByteSize::from_mib(8), 1.0);
        let heavy = hw.spill_time(ByteSize::from_mib(8), 4.0);
        assert!(heavy > plain);
        // Raw disk write component is unchanged.
        assert_eq!(
            heavy - hw.ser_time(ByteSize::from_mib(8), 4.0),
            plain - hw.ser_time(ByteSize::from_mib(8), 1.0)
        );
    }

    #[test]
    fn total_memory_multiplies_out() {
        let c = ClusterConfig {
            executors: 3,
            memory_capacity: ByteSize::from_mib(10),
            ..Default::default()
        };
        assert_eq!(c.total_memory(), ByteSize::from_mib(30));
    }
}
