//! The shuffle store.
//!
//! Map tasks write per-reducer buckets; reduce tasks fetch the buckets
//! addressed to them. Like Spark's shuffle files, outputs persist for the
//! lifetime of the application and are *not* subject to cache eviction —
//! which is why recomputing an RDD with a shuffle dependency re-reads
//! shuffle data instead of re-running the whole upstream stage.
//!
//! Under fault injection the store also models shuffle-output *loss*: each
//! output remembers the executor that produced it, so an executor crash
//! without an external shuffle service drops exactly that executor's
//! outputs, and the `lost` set remembers what disappeared so the recovery
//! work that regenerates it can be attributed (see `crate::fault`).

use blaze_common::fxhash::{FxHashMap, FxHashSet};
use blaze_common::ids::{ExecutorId, RddId};
use blaze_common::ByteSize;
use blaze_dataflow::Block;

/// Identifies one shuffle: the consuming RDD and the index of the shuffle
/// dependency within its dependency list.
pub type ShuffleId = (RddId, usize);

/// One registered map output: the per-reducer buckets and the executor
/// whose (simulated) local disk holds them.
#[derive(Debug)]
struct MapOutput {
    buckets: Vec<Block>,
    producer: ExecutorId,
}

/// Global store of map-side shuffle outputs.
#[derive(Debug, Default)]
pub struct ShuffleStore {
    /// (shuffle, map task) -> per-reducer buckets.
    outputs: FxHashMap<(ShuffleId, usize), MapOutput>,
    /// Outputs that were registered once and then destroyed by a fault;
    /// cleared per entry when the output is regenerated. Drives recovery
    /// attribution, never correctness.
    lost: FxHashSet<(ShuffleId, usize)>,
}

impl ShuffleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns true if map task `map_part` of `shuffle` has registered output.
    pub fn has_map_output(&self, shuffle: ShuffleId, map_part: usize) -> bool {
        self.outputs.contains_key(&(shuffle, map_part))
    }

    /// Returns true if all `num_maps` map outputs of `shuffle` exist.
    pub fn is_complete(&self, shuffle: ShuffleId, num_maps: usize) -> bool {
        (0..num_maps).all(|m| self.has_map_output(shuffle, m))
    }

    /// Registers the buckets produced by one map task on `producer`.
    pub fn put_map_output(
        &mut self,
        shuffle: ShuffleId,
        map_part: usize,
        buckets: Vec<Block>,
        producer: ExecutorId,
    ) {
        self.outputs.insert((shuffle, map_part), MapOutput { buckets, producer });
    }

    /// Fetches the bucket addressed to `reduce_part` from one map task.
    pub fn fetch(&self, shuffle: ShuffleId, map_part: usize, reduce_part: usize) -> Option<Block> {
        self.outputs.get(&(shuffle, map_part)).and_then(|o| o.buckets.get(reduce_part)).cloned()
    }

    /// Total bytes a reducer fetches for `reduce_part` across `num_maps` maps.
    pub fn fetch_bytes(&self, shuffle: ShuffleId, num_maps: usize, reduce_part: usize) -> ByteSize {
        (0..num_maps)
            .filter_map(|m| self.outputs.get(&(shuffle, m)))
            .filter_map(|o| o.buckets.get(reduce_part))
            .map(|b| b.bytes())
            .sum()
    }

    /// Total bytes resident in the shuffle store.
    pub fn total_bytes(&self) -> ByteSize {
        self.outputs.values().flat_map(|o| &o.buckets).map(|b| b.bytes()).sum()
    }

    /// Number of registered map outputs.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Returns true if no map outputs are registered.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    // ---- Fault-injection surface -------------------------------------------

    /// Every registered output key, sorted. Fault injection iterates this
    /// (never the hash map directly) so loss draws are order-independent.
    pub fn keys_sorted(&self) -> Vec<(ShuffleId, usize)> {
        let mut keys: Vec<_> = self.outputs.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Drops one map output, remembering it as lost. Returns true if the
    /// output existed.
    pub fn drop_map_output(&mut self, shuffle: ShuffleId, map_part: usize) -> bool {
        if self.outputs.remove(&(shuffle, map_part)).is_some() {
            self.lost.insert((shuffle, map_part));
            true
        } else {
            false
        }
    }

    /// Drops every output produced by `exec` (the no-external-shuffle-service
    /// crash path). Returns the destroyed keys, sorted.
    pub fn drop_by_producer(&mut self, exec: ExecutorId) -> Vec<(ShuffleId, usize)> {
        let mut dropped: Vec<(ShuffleId, usize)> =
            self.outputs.iter().filter(|(_, o)| o.producer == exec).map(|(&k, _)| k).collect();
        dropped.sort_unstable();
        for key in &dropped {
            self.outputs.remove(key);
            self.lost.insert(*key);
        }
        dropped
    }

    /// True if this exact output was destroyed by a fault and has not been
    /// regenerated yet.
    pub fn was_lost(&self, shuffle: ShuffleId, map_part: usize) -> bool {
        self.lost.contains(&(shuffle, map_part))
    }

    /// True if any map output of `shuffle` is currently lost.
    pub fn any_lost(&self, shuffle: ShuffleId) -> bool {
        self.lost.iter().any(|&(s, _)| s == shuffle)
    }

    /// Clears the lost marker after regeneration. Returns true if the
    /// output had been marked lost.
    pub fn mark_recovered(&mut self, shuffle: ShuffleId, map_part: usize) -> bool {
        self.lost.remove(&(shuffle, map_part))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buckets(n: usize, elems_each: usize) -> Vec<Block> {
        (0..n).map(|_| Block::from_vec(vec![0u64; elems_each])).collect()
    }

    const E0: ExecutorId = ExecutorId(0);
    const E1: ExecutorId = ExecutorId(1);

    #[test]
    fn put_and_fetch_round_trip() {
        let mut s = ShuffleStore::new();
        let sh: ShuffleId = (RddId(5), 0);
        assert!(!s.has_map_output(sh, 0));
        s.put_map_output(sh, 0, buckets(3, 2), E0);
        s.put_map_output(sh, 1, buckets(3, 2), E1);
        assert!(s.has_map_output(sh, 0));
        assert!(s.is_complete(sh, 2));
        assert!(!s.is_complete(sh, 3));
        let b = s.fetch(sh, 1, 2).unwrap();
        assert_eq!(b.len(), 2);
        assert!(s.fetch(sh, 9, 0).is_none());
    }

    #[test]
    fn fetch_bytes_sums_across_maps() {
        let mut s = ShuffleStore::new();
        let sh: ShuffleId = (RddId(1), 0);
        s.put_map_output(sh, 0, buckets(2, 10), E0);
        s.put_map_output(sh, 1, buckets(2, 10), E0);
        assert_eq!(s.fetch_bytes(sh, 2, 0), ByteSize::from_bytes(2 * 10 * 8));
        assert_eq!(s.total_bytes(), ByteSize::from_bytes(4 * 10 * 8));
    }

    #[test]
    fn producer_crash_drops_only_its_outputs() {
        let mut s = ShuffleStore::new();
        let sh: ShuffleId = (RddId(2), 0);
        s.put_map_output(sh, 0, buckets(2, 1), E0);
        s.put_map_output(sh, 1, buckets(2, 1), E1);
        assert_eq!(s.drop_by_producer(E0), vec![(sh, 0)]);
        assert!(!s.has_map_output(sh, 0));
        assert!(s.has_map_output(sh, 1));
        assert!(s.was_lost(sh, 0));
        assert!(!s.was_lost(sh, 1));
        assert!(s.any_lost(sh));
        // Regeneration clears the lost marker.
        s.put_map_output(sh, 0, buckets(2, 1), E1);
        assert!(s.mark_recovered(sh, 0));
        assert!(!s.any_lost(sh));
        assert!(!s.mark_recovered(sh, 0));
    }

    #[test]
    fn targeted_drop_and_sorted_keys() {
        let mut s = ShuffleStore::new();
        let a: ShuffleId = (RddId(3), 0);
        let b: ShuffleId = (RddId(1), 1);
        s.put_map_output(a, 1, buckets(1, 1), E0);
        s.put_map_output(b, 0, buckets(1, 1), E0);
        assert_eq!(s.keys_sorted(), vec![(b, 0), (a, 1)]);
        assert!(s.drop_map_output(a, 1));
        assert!(!s.drop_map_output(a, 1));
        assert!(s.was_lost(a, 1));
        assert_eq!(s.len(), 1);
    }
}
