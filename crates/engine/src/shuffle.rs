//! The shuffle store.
//!
//! Map tasks write per-reducer buckets; reduce tasks fetch the buckets
//! addressed to them. Like Spark's shuffle files, outputs persist for the
//! lifetime of the application and are *not* subject to cache eviction —
//! which is why recomputing an RDD with a shuffle dependency re-reads
//! shuffle data instead of re-running the whole upstream stage.

use blaze_common::fxhash::FxHashMap;
use blaze_common::ids::RddId;
use blaze_common::ByteSize;
use blaze_dataflow::Block;

/// Identifies one shuffle: the consuming RDD and the index of the shuffle
/// dependency within its dependency list.
pub type ShuffleId = (RddId, usize);

/// Global store of map-side shuffle outputs.
#[derive(Debug, Default)]
pub struct ShuffleStore {
    /// (shuffle, map task) -> per-reducer buckets.
    outputs: FxHashMap<(ShuffleId, usize), Vec<Block>>,
}

impl ShuffleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns true if map task `map_part` of `shuffle` has registered output.
    pub fn has_map_output(&self, shuffle: ShuffleId, map_part: usize) -> bool {
        self.outputs.contains_key(&(shuffle, map_part))
    }

    /// Returns true if all `num_maps` map outputs of `shuffle` exist.
    pub fn is_complete(&self, shuffle: ShuffleId, num_maps: usize) -> bool {
        (0..num_maps).all(|m| self.has_map_output(shuffle, m))
    }

    /// Registers the buckets produced by one map task.
    pub fn put_map_output(&mut self, shuffle: ShuffleId, map_part: usize, buckets: Vec<Block>) {
        self.outputs.insert((shuffle, map_part), buckets);
    }

    /// Fetches the bucket addressed to `reduce_part` from one map task.
    pub fn fetch(&self, shuffle: ShuffleId, map_part: usize, reduce_part: usize) -> Option<Block> {
        self.outputs.get(&(shuffle, map_part)).and_then(|b| b.get(reduce_part)).cloned()
    }

    /// Total bytes a reducer fetches for `reduce_part` across `num_maps` maps.
    pub fn fetch_bytes(&self, shuffle: ShuffleId, num_maps: usize, reduce_part: usize) -> ByteSize {
        (0..num_maps)
            .filter_map(|m| self.outputs.get(&(shuffle, m)))
            .filter_map(|b| b.get(reduce_part))
            .map(|b| b.bytes())
            .sum()
    }

    /// Total bytes resident in the shuffle store.
    pub fn total_bytes(&self) -> ByteSize {
        self.outputs.values().flatten().map(|b| b.bytes()).sum()
    }

    /// Number of registered map outputs.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Returns true if no map outputs are registered.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buckets(n: usize, elems_each: usize) -> Vec<Block> {
        (0..n).map(|_| Block::from_vec(vec![0u64; elems_each])).collect()
    }

    #[test]
    fn put_and_fetch_round_trip() {
        let mut s = ShuffleStore::new();
        let sh: ShuffleId = (RddId(5), 0);
        assert!(!s.has_map_output(sh, 0));
        s.put_map_output(sh, 0, buckets(3, 2));
        s.put_map_output(sh, 1, buckets(3, 2));
        assert!(s.has_map_output(sh, 0));
        assert!(s.is_complete(sh, 2));
        assert!(!s.is_complete(sh, 3));
        let b = s.fetch(sh, 1, 2).unwrap();
        assert_eq!(b.len(), 2);
        assert!(s.fetch(sh, 9, 0).is_none());
    }

    #[test]
    fn fetch_bytes_sums_across_maps() {
        let mut s = ShuffleStore::new();
        let sh: ShuffleId = (RddId(1), 0);
        s.put_map_output(sh, 0, buckets(2, 10));
        s.put_map_output(sh, 1, buckets(2, 10));
        assert_eq!(s.fetch_bytes(sh, 2, 0), ByteSize::from_bytes(2 * 10 * 8));
        assert_eq!(s.total_bytes(), ByteSize::from_bytes(4 * 10 * 8));
    }
}
