//! Structured, deterministic event tracing.
//!
//! When [`crate::config::ClusterConfig::tracing`] is on, the engine records
//! every task-lifecycle step, cache decision (with the deciding policy's
//! rationale), recomputation span and recovery action into a [`TraceLog`]
//! of sim-clock-timestamped [`TraceEvent`]s. The log is the auditable form
//! of the aggregate [`Metrics`]: everything the paper's evaluation figures
//! sum up can be re-derived event by event.
//!
//! Three contracts, mirroring the fault layer's design:
//!
//! - **Zero cost when off.** Like [`crate::fault::FaultPlan`], tracing is a
//!   feature gate on the config; with the default (`tracing: false`) the
//!   engine takes no tracing path at all and behaves byte-identically to a
//!   build without this module.
//! - **Deterministic.** Every event is recorded during the serial commit
//!   phase of the plan/execute/commit pipeline (or in other serial engine
//!   paths), so the log is byte-identical across `worker_threads` settings
//!   and repeated runs.
//! - **Self-checking.** [`TraceLog::validate`] replays the log against the
//!   run's [`Metrics`] and reports BA4xx diagnostics when span nesting is
//!   violated (BA401), summed event durations fail to reproduce the metric
//!   aggregates (BA402), or a cache event is unpaired — e.g. an eviction
//!   with no earlier admission (BA403).
//!
//! Exports: Chrome trace-event JSON ([`TraceLog::chrome_json`], loadable in
//! `chrome://tracing` / Perfetto) and a human-readable per-job cache-decision
//! ledger ([`TraceLog::ledger`]). The `blaze-trace` CLI in `blaze-bench`
//! renders, explains, validates and diffs these.

use crate::fault::FaultCause;
use crate::metrics::Metrics;
use blaze_audit::{AuditReport, DiagCode, Diagnostic};
use blaze_common::fxhash::FxHashMap;
use blaze_common::ids::{AppId, BlockId, ExecutorId, JobId, RddId};
use blaze_common::{ByteSize, SimDuration, SimTime};
use std::fmt::Write as _;

/// What the cache layer decided about one block, at one moment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDecision {
    /// Admitted into an executor's memory store.
    AdmitMemory,
    /// Admitted (or spilled on admission failure) into a disk store.
    AdmitDisk,
    /// Served from a memory store.
    HitMemory,
    /// Served from a memory store where the block was held in serialized
    /// form (state s); the reader paid a deserialization charge. Counted
    /// as a memory hit in the aggregates, with `ser_mem_hits` as the
    /// serialized subset. Never emitted unless the serialized tier is on.
    HitSerializedMemory,
    /// Served from a disk store.
    HitDisk,
    /// A previously materialized block was found nowhere and fell back to
    /// recomputation.
    MissRecompute,
    /// Evicted from memory and spilled to disk (state m -> d).
    EvictToDisk,
    /// Evicted from memory and discarded (state m -> u).
    EvictDiscard,
    /// Moved from disk into memory (promotion / prefetch, d -> m).
    PromoteToMemory,
    /// Compacted in place from deserialized to serialized memory form
    /// (state m -> s). The block stays memory-resident; only its stored
    /// footprint changes, so this neither inserts nor removes for the
    /// residency replay. Never emitted unless the serialized tier is on.
    SerializeInMemory,
    /// Expanded in place from serialized to deserialized memory form
    /// (state s -> m). Residency no-op, like [`Self::SerializeInMemory`].
    DeserializeInMemory,
    /// Moved from disk into memory in serialized form (d -> s): a disk
    /// read without the deserialization leg. Never emitted unless the
    /// serialized tier is on.
    PromoteToSerializedMemory,
    /// Removed from a memory store by an unpersist (user or controller).
    UnpersistMemory,
    /// Removed from a disk store by an unpersist (user or controller).
    UnpersistDisk,
    /// Destroyed in a memory store by an executor loss.
    LostMemory,
    /// Destroyed in a disk store by an executor loss.
    LostDisk,
    /// The decision path overran its `solve_deadline` budget and stepped
    /// down the solver degradation ladder for this job (no block moved;
    /// the record's id is a synthetic marker and its rationale names the
    /// rung that actually ran).
    SolverDegrade,
}

impl CacheDecision {
    /// Stable short label used by the ledger and Chrome export.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheDecision::AdmitMemory => "admit-mem",
            CacheDecision::AdmitDisk => "admit-disk",
            CacheDecision::HitMemory => "hit-mem",
            CacheDecision::HitSerializedMemory => "hit-ser-mem",
            CacheDecision::HitDisk => "hit-disk",
            CacheDecision::MissRecompute => "miss-recompute",
            CacheDecision::EvictToDisk => "evict-to-disk",
            CacheDecision::EvictDiscard => "evict-discard",
            CacheDecision::PromoteToMemory => "promote-to-mem",
            CacheDecision::SerializeInMemory => "ser-in-mem",
            CacheDecision::DeserializeInMemory => "deser-in-mem",
            CacheDecision::PromoteToSerializedMemory => "promote-to-ser",
            CacheDecision::UnpersistMemory => "unpersist-mem",
            CacheDecision::UnpersistDisk => "unpersist-disk",
            CacheDecision::LostMemory => "lost-mem",
            CacheDecision::LostDisk => "lost-disk",
            CacheDecision::SolverDegrade => "solver-degrade",
        }
    }

    /// True for decisions that insert the block into a *memory* store.
    fn inserts_memory(self) -> bool {
        matches!(
            self,
            CacheDecision::AdmitMemory
                | CacheDecision::PromoteToMemory
                | CacheDecision::PromoteToSerializedMemory
        )
    }

    /// True for decisions that remove the block from a *memory* store.
    fn removes_memory(self) -> bool {
        matches!(
            self,
            CacheDecision::EvictToDisk
                | CacheDecision::EvictDiscard
                | CacheDecision::UnpersistMemory
                | CacheDecision::LostMemory
        )
    }
}

/// One cache decision: which block, where, how big, and — when the
/// installed policy can explain itself — why (its score, refcount or
/// reference distance at decision time).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheRecord {
    /// Simulated time of the decision.
    pub at: SimTime,
    /// The application on whose behalf the engine was executing when the
    /// decision was made (`app-0` outside multi-app sessions). For hits
    /// this is the *reader*, so a hit recorded under a different app than
    /// the one that produced the block is a cross-app hit.
    pub app: AppId,
    /// Executor whose store the decision concerns (for hits: the reader).
    pub executor: ExecutorId,
    /// The block decided about.
    pub id: BlockId,
    /// Logical bytes of the block.
    pub bytes: ByteSize,
    /// What was decided.
    pub decision: CacheDecision,
    /// The deciding policy's rationale
    /// ([`crate::controller::CacheController::explain_block`]), captured
    /// before the decision was applied. `None` when the policy keeps no
    /// per-block state or the decision needs no justification.
    pub rationale: Option<String>,
}

/// One entry of the event log. All variants are stamped with simulated
/// time; ordering within the log is the deterministic commit order.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A job began (one action trigger).
    JobStarted {
        /// Simulated start time (the job's clock floor).
        at: SimTime,
        /// The application the job belongs to.
        app: AppId,
        /// The job.
        job: JobId,
        /// The action's target dataset.
        target: RddId,
    },
    /// A job finished; `at` is the job's simulated completion time.
    JobCompleted {
        /// Simulated completion time.
        at: SimTime,
        /// The application the job belongs to.
        app: AppId,
        /// The job.
        job: JobId,
    },
    /// A task was placed on an executor during the serial plan phase.
    TaskPlanned {
        /// Time of the placement decision (the stage's earliest start).
        at: SimTime,
        /// The application the job belongs to.
        app: AppId,
        /// Job the task belongs to.
        job: JobId,
        /// The RDD the task's stage materializes.
        stage_output: RddId,
        /// Partition index.
        partition: u32,
        /// The locality-chosen executor.
        executor: ExecutorId,
    },
    /// A task attempt died (injected transient fault or executor loss) and
    /// the task was retried.
    TaskRetry {
        /// Commit time of the surviving task that replays this attempt.
        at: SimTime,
        /// The application the job belongs to.
        app: AppId,
        /// Job the task belongs to.
        job: JobId,
        /// The RDD the task's stage materializes.
        stage_output: RddId,
        /// Partition index.
        partition: u32,
        /// Zero-based attempt index that failed.
        attempt: u32,
        /// Why the attempt died.
        cause: FaultCause,
        /// Slot time the dead attempt burned.
        wasted: SimDuration,
    },
    /// A task committed: its simulated span on an executor slot.
    TaskCommitted {
        /// The application the job belongs to.
        app: AppId,
        /// Job the task belonged to.
        job: JobId,
        /// The RDD the task's stage materialized.
        stage_output: RddId,
        /// Partition index.
        partition: u32,
        /// Executor the task ran on.
        executor: ExecutorId,
        /// Slot within the executor.
        slot: u32,
        /// Simulated start time.
        start: SimTime,
        /// Simulated end time.
        end: SimTime,
    },
    /// A cache decision (admit / hit / miss / evict / unpersist / loss).
    Cache(CacheRecord),
    /// A lineage edge was re-executed for a previously materialized block.
    Recompute {
        /// Commit time of the recomputing task.
        at: SimTime,
        /// The application the job belongs to.
        app: AppId,
        /// Job during which the recomputation ran.
        job: JobId,
        /// The recomputed block.
        id: BlockId,
        /// Executor that recomputed it.
        executor: ExecutorId,
        /// Lineage depth below the task's stage output (0 = the output
        /// itself): how deep the miss forced the task to recurse.
        depth: u32,
        /// Simulated time of the re-executed edge.
        duration: SimDuration,
    },
    /// A task spent part of its charge replaying lineage to re-produce
    /// fault-lost data.
    RecoveryReplay {
        /// Commit time of the task.
        at: SimTime,
        /// The application the job belongs to.
        app: AppId,
        /// Job the task belonged to.
        job: JobId,
        /// The RDD the task's stage materialized.
        stage_output: RddId,
        /// Partition index.
        partition: u32,
        /// Recovery slice of the task's charge.
        duration: SimDuration,
    },
    /// An executor crashed and was replaced; summary of what it took down.
    ExecutorCrashed {
        /// Simulated time the crash fired.
        at: SimTime,
        /// The crashed executor.
        executor: ExecutorId,
        /// Cached blocks destroyed (memory + disk).
        blocks_lost: u64,
        /// Logical bytes of cached data destroyed.
        bytes_lost: ByteSize,
        /// Shuffle map outputs destroyed (no external shuffle service).
        map_outputs_lost: u64,
    },
    /// One shuffle map output was destroyed by a fault.
    MapOutputLost {
        /// Simulated time of the loss.
        at: SimTime,
        /// Consuming RDD of the shuffle.
        child: RddId,
        /// Shuffle-dependency index within the consumer.
        dep_idx: u32,
        /// The destroyed map task's partition index.
        map_part: u32,
    },
    /// A previously lost map output was regenerated through lineage.
    MapOutputRecovered {
        /// Commit time of the regenerating task.
        at: SimTime,
        /// Consuming RDD of the shuffle.
        child: RddId,
        /// Shuffle-dependency index within the consumer.
        dep_idx: u32,
        /// The regenerated map task's partition index.
        map_part: u32,
    },
    /// A fault-lost cached block was re-produced through lineage.
    BlockRecovered {
        /// Commit time of the recovering task.
        at: SimTime,
        /// The recovered block.
        id: BlockId,
    },
    /// A map stage re-ran because its registered shuffle outputs were lost
    /// (Spark's fetch-failure stage resubmission).
    StageResubmitted {
        /// The stage's start time.
        at: SimTime,
        /// The application the job belongs to.
        app: AppId,
        /// Job the stage belongs to.
        job: JobId,
        /// The stage's output RDD.
        stage_output: RddId,
    },
    /// A task the fault plan marked as a straggler committed. `delay` is
    /// the extra slot time the injected slowdown cost the committed attempt
    /// (zero when a speculative copy won the race instead).
    Straggler {
        /// Commit time of the task.
        at: SimTime,
        /// The application the job belongs to.
        app: AppId,
        /// Job the task belongs to.
        job: JobId,
        /// The RDD the task's stage materializes.
        stage_output: RddId,
        /// Partition index.
        partition: u32,
        /// Slowdown charged to the committed attempt.
        delay: SimDuration,
    },
    /// A speculative copy raced a straggling task; whichever attempt
    /// finished first committed, the loser's slot time was wasted.
    Speculation {
        /// Commit time of the winning attempt.
        at: SimTime,
        /// The application the job belongs to.
        app: AppId,
        /// Job the task belongs to.
        job: JobId,
        /// The RDD the task's stage materializes.
        stage_output: RddId,
        /// Partition index.
        partition: u32,
        /// Executor the speculative copy ran on.
        copy_executor: ExecutorId,
        /// True when the copy finished first and was committed.
        copy_won: bool,
        /// Slot time burned by the losing attempt.
        wasted: SimDuration,
    },
    /// A spilled block failed checksum verification on read; it was
    /// dropped from the disk tier and re-produced through lineage.
    SpillQuarantined {
        /// Commit time of the detecting task.
        at: SimTime,
        /// Executor whose disk tier held the corrupt block.
        executor: ExecutorId,
        /// The quarantined block.
        id: BlockId,
        /// Logical bytes dropped.
        bytes: ByteSize,
    },
    /// A shuffle-fetch attempt failed and was retried after a deterministic
    /// backoff wait on the sim clock.
    FetchRetry {
        /// Commit time of the fetching task.
        at: SimTime,
        /// The application the job belongs to.
        app: AppId,
        /// Job the fetch belongs to.
        job: JobId,
        /// Consuming RDD of the shuffle.
        child: RddId,
        /// Shuffle-dependency index within the consumer.
        dep_idx: u32,
        /// The fetching reduce task's partition index.
        reduce_part: u32,
        /// Zero-based attempt index that failed.
        attempt: u32,
        /// Backoff wait charged before the next attempt.
        backoff: SimDuration,
    },
    /// Every fetch attempt in the retry budget failed; the parent stage's
    /// map outputs were regenerated through lineage (the engine's inline
    /// form of parent-stage resubmission).
    FetchEscalated {
        /// Commit time of the fetching task.
        at: SimTime,
        /// The application the job belongs to.
        app: AppId,
        /// Job the fetch belongs to.
        job: JobId,
        /// Consuming RDD of the shuffle.
        child: RddId,
        /// Shuffle-dependency index within the consumer.
        dep_idx: u32,
        /// The fetching reduce task's partition index.
        reduce_part: u32,
    },
}

impl TraceEvent {
    /// The event's simulated timestamp (tasks: their start).
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::JobStarted { at, .. }
            | TraceEvent::JobCompleted { at, .. }
            | TraceEvent::TaskPlanned { at, .. }
            | TraceEvent::TaskRetry { at, .. }
            | TraceEvent::Recompute { at, .. }
            | TraceEvent::RecoveryReplay { at, .. }
            | TraceEvent::ExecutorCrashed { at, .. }
            | TraceEvent::MapOutputLost { at, .. }
            | TraceEvent::MapOutputRecovered { at, .. }
            | TraceEvent::BlockRecovered { at, .. }
            | TraceEvent::StageResubmitted { at, .. }
            | TraceEvent::Straggler { at, .. }
            | TraceEvent::Speculation { at, .. }
            | TraceEvent::SpillQuarantined { at, .. }
            | TraceEvent::FetchRetry { at, .. }
            | TraceEvent::FetchEscalated { at, .. } => *at,
            TraceEvent::TaskCommitted { start, .. } => *start,
            TraceEvent::Cache(r) => r.at,
        }
    }
}

/// The structured event log of one application run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event (engine-internal; order is commit order).
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The recorded events, in deterministic commit order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    // ---- Exports -----------------------------------------------------------

    /// Renders the log as Chrome trace-event JSON (the `chrome://tracing` /
    /// Perfetto format): tasks become complete (`"X"`) spans with
    /// `pid` = executor and `tid` = slot; everything else becomes instant
    /// (`"i"`) events. Timestamps are microseconds with nanosecond
    /// fractions, so the export is lossless and byte-deterministic.
    pub fn chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for ev in &self.events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            match ev {
                TraceEvent::TaskCommitted {
                    app,
                    job,
                    stage_output,
                    partition,
                    executor,
                    slot,
                    start,
                    end,
                } => {
                    let _ = write!(
                        out,
                        "{{\"name\":{},\"cat\":\"task\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                         \"pid\":{},\"tid\":{},\"args\":{{\"app\":{},\"job\":{}}}}}",
                        json_string(&format!("{stage_output}[{partition}]")),
                        micros(start.as_nanos()),
                        micros(end.since(*start).as_nanos()),
                        executor.raw(),
                        slot,
                        app.raw(),
                        job.raw(),
                    );
                }
                TraceEvent::Cache(r) => {
                    let _ = write!(
                        out,
                        "{{\"name\":{},\"cat\":\"cache\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{},\
                         \"pid\":{},\"tid\":0,\"args\":{{\"app\":{},\"block\":{},\"bytes\":{},\
                         \"why\":{}}}}}",
                        json_string(r.decision.as_str()),
                        micros(r.at.as_nanos()),
                        r.executor.raw(),
                        r.app.raw(),
                        json_string(&r.id.to_string()),
                        r.bytes.as_bytes(),
                        json_string(r.rationale.as_deref().unwrap_or("")),
                    );
                }
                other => {
                    let _ = write!(
                        out,
                        "{{\"name\":{},\"cat\":\"engine\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\
                         \"pid\":0,\"tid\":0,\"args\":{{\"detail\":{}}}}}",
                        json_string(event_name(other)),
                        micros(other.at().as_nanos()),
                        json_string(&event_detail(other)),
                    );
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Renders the per-job cache-decision ledger: one line per decision,
    /// grouped under the job of the app that was running when it was made
    /// (decisions outside any of that app's jobs are attributed to the
    /// preceding job boundary). With co-running apps each app has its own
    /// open job, so attribution follows the record's `app` field.
    pub fn ledger(&self) -> String {
        let mut out = String::new();
        let mut open: FxHashMap<AppId, JobId> = FxHashMap::default();
        for ev in &self.events {
            match ev {
                TraceEvent::JobStarted { at, app, job, target } => {
                    open.insert(*app, *job);
                    let _ = writeln!(out, "{app}/{job} (target {target}) started at {at}:");
                }
                TraceEvent::JobCompleted { at, app, job } => {
                    let _ = writeln!(out, "{app}/{job} completed at {at}");
                    open.remove(app);
                }
                TraceEvent::Cache(r) => {
                    let scope = match open.get(&r.app) {
                        Some(j) => format!("{}/{j}", r.app),
                        None => format!("{}/between-jobs", r.app),
                    };
                    let _ = write!(
                        out,
                        "  [{scope}] {} {:<14} {} on {} ({})",
                        r.at,
                        r.decision.as_str(),
                        r.id,
                        r.executor,
                        r.bytes,
                    );
                    if let Some(why) = &r.rationale {
                        let _ = write!(out, " why: {why}");
                    }
                    out.push('\n');
                }
                _ => {}
            }
        }
        out
    }

    /// Explains one block's cache history: every decision that touched it,
    /// in order, plus its final memory/disk residency per the trace.
    pub fn explain(&self, id: BlockId) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "history of {id}:");
        let mut mem: Option<ExecutorId> = None;
        let mut disk: Option<ExecutorId> = None;
        let mut seen = 0usize;
        for ev in &self.events {
            let TraceEvent::Cache(r) = ev else { continue };
            if r.id != id {
                continue;
            }
            seen += 1;
            let _ = write!(
                out,
                "  {} {:<14} on {} ({})",
                r.at,
                r.decision.as_str(),
                r.executor,
                r.bytes
            );
            if let Some(why) = &r.rationale {
                let _ = write!(out, " why: {why}");
            }
            out.push('\n');
            match r.decision {
                d if d.inserts_memory() => mem = Some(r.executor),
                d if d.removes_memory() => mem = None,
                _ => {}
            }
            match r.decision {
                CacheDecision::AdmitDisk | CacheDecision::EvictToDisk => disk = Some(r.executor),
                CacheDecision::PromoteToMemory
                | CacheDecision::PromoteToSerializedMemory
                | CacheDecision::UnpersistDisk
                | CacheDecision::LostDisk => disk = None,
                _ => {}
            }
        }
        if seen == 0 {
            let _ = writeln!(out, "  (no cache decisions recorded for this block)");
        }
        let fmt_res = |r: Option<ExecutorId>| match r {
            Some(e) => format!("resident on {e}"),
            None => "not resident".to_string(),
        };
        let _ = writeln!(out, "  final: memory {}, disk {}", fmt_res(mem), fmt_res(disk));
        out
    }

    /// Diffs two traces: reports the first diverging event (with one event
    /// of context on each side) or states that they are identical.
    pub fn diff(&self, other: &TraceLog) -> String {
        let n = self.events.len().min(other.events.len());
        for i in 0..n {
            if self.events[i] != other.events[i] {
                return format!(
                    "traces diverge at event {i}:\n  left:  {:?}\n  right: {:?}\n",
                    self.events[i], other.events[i]
                );
            }
        }
        if self.events.len() != other.events.len() {
            return format!(
                "traces agree on the first {n} events, then lengths diverge \
                 (left {} events, right {})\n",
                self.events.len(),
                other.events.len()
            );
        }
        format!("traces are identical ({n} events)\n")
    }

    // ---- Validation --------------------------------------------------------

    /// Validates the log against the run's aggregate metrics: span nesting
    /// (BA401), aggregate reproduction (BA402) and admit/evict pairing
    /// (BA403). A clean report proves the aggregates are exactly the sums
    /// of the recorded events.
    pub fn validate(&self, metrics: &Metrics) -> AuditReport {
        let mut ds = Vec::new();
        self.check_spans(&mut ds);
        self.check_aggregates(metrics, &mut ds);
        self.check_pairing(&mut ds);
        AuditReport::new(ds)
    }

    fn check_spans(&self, ds: &mut Vec<Diagnostic>) {
        // Each app has at most one open job at a time; co-running apps may
        // overlap, so the open set is keyed by app rather than a scalar.
        let mut open_jobs: FxHashMap<AppId, JobId> = FxHashMap::default();
        let mut slot_frontier: FxHashMap<(ExecutorId, u32), SimTime> = FxHashMap::default();
        let err = |msg: String| {
            Diagnostic::new(
                DiagCode::TraceSpanNesting,
                None,
                msg,
                "the engine's commit path recorded events out of order; this is an engine bug"
                    .into(),
            )
        };
        for ev in &self.events {
            match ev {
                TraceEvent::JobStarted { app, job, .. } => {
                    if let Some(open) = open_jobs.get(app) {
                        ds.push(err(format!(
                            "{app}/{job} started while {app}/{open} is still open"
                        )));
                    }
                    open_jobs.insert(*app, *job);
                }
                TraceEvent::JobCompleted { app, job, .. } => {
                    if open_jobs.get(app) != Some(job) {
                        ds.push(err(format!(
                            "{app}/{job} completed but was not the app's open job"
                        )));
                    }
                    open_jobs.remove(app);
                }
                TraceEvent::TaskCommitted {
                    app,
                    job,
                    stage_output,
                    partition,
                    executor,
                    slot,
                    start,
                    end,
                } => {
                    let task = format!("{stage_output}[{partition}] of {app}/{job}");
                    if end < start {
                        ds.push(err(format!(
                            "task {task} ends at {end}, before its start {start}"
                        )));
                    }
                    if open_jobs.get(app) != Some(job) {
                        ds.push(err(format!("task {task} committed outside its job span")));
                    }
                    let frontier = slot_frontier.entry((*executor, *slot)).or_default();
                    if *start < *frontier {
                        ds.push(err(format!(
                            "task {task} starts at {start} on {executor}/slot {slot}, \
                             overlapping the previous span ending at {frontier}"
                        )));
                    }
                    *frontier = (*frontier).max(*end);
                }
                _ => {}
            }
        }
        let mut still_open: Vec<_> = open_jobs.into_iter().collect();
        still_open.sort_unstable();
        for (app, open) in still_open {
            ds.push(err(format!("{app}/{open} never completed")));
        }
    }

    #[allow(clippy::too_many_lines)]
    fn check_aggregates(&self, metrics: &Metrics, ds: &mut Vec<Diagnostic>) {
        // Re-derive every aggregate from the events alone...
        let mut tasks = 0u64;
        let mut jobs = 0u64;
        let mut last_completed = SimTime::ZERO;
        let mut busy: FxHashMap<ExecutorId, SimDuration> = FxHashMap::default();
        let mut mem_hits = 0u64;
        let mut ser_mem_hits = 0u64;
        let mut ser_transitions = 0u64;
        let mut disk_hits = 0u64;
        let mut misses = 0u64;
        let mut recomputes = 0u64;
        let mut recompute_by: FxHashMap<(AppId, JobId, RddId), SimDuration> = FxHashMap::default();
        let mut ser_hits_by_job: FxHashMap<(AppId, JobId), u64> = FxHashMap::default();
        let mut spec_by_job: FxHashMap<(AppId, JobId), u64> = FxHashMap::default();
        let mut open: FxHashMap<AppId, JobId> = FxHashMap::default();
        let mut evictions_to_disk = 0u64;
        let mut evictions_discard = 0u64;
        let mut spilled: FxHashMap<ExecutorId, ByteSize> = FxHashMap::default();
        let mut discarded: FxHashMap<ExecutorId, ByteSize> = FxHashMap::default();
        let mut task_retries = 0u64;
        let mut tasks_lost = 0u64;
        let mut wasted = SimDuration::ZERO;
        let mut replay = SimDuration::ZERO;
        let mut recovery_by_job: FxHashMap<(AppId, JobId), SimDuration> = FxHashMap::default();
        let mut crashes = 0u64;
        let mut blocks_lost = 0u64;
        let mut bytes_lost = ByteSize::ZERO;
        let mut map_lost = 0u64;
        let mut map_recovered = 0u64;
        let mut blocks_recovered = 0u64;
        let mut resubmitted = 0u64;
        let mut stragglers = 0u64;
        let mut straggler_delay = SimDuration::ZERO;
        let mut spec_launched = 0u64;
        let mut spec_wins = 0u64;
        let mut spec_wasted = SimDuration::ZERO;
        let mut quarantined = 0u64;
        let mut fetch_retries = 0u64;
        let mut fetch_backoff = SimDuration::ZERO;
        let mut escalations = 0u64;
        for ev in &self.events {
            match ev {
                TraceEvent::JobStarted { app, job, .. } => {
                    open.insert(*app, *job);
                }
                TraceEvent::JobCompleted { at, app, .. } => {
                    jobs += 1;
                    // With co-running apps the last *recorded* completion
                    // need not be the latest on the sim clock.
                    last_completed = last_completed.max(*at);
                    open.remove(app);
                }
                TraceEvent::TaskCommitted { executor, start, end, .. } => {
                    tasks += 1;
                    *busy.entry(*executor).or_default() += end.since(*start);
                }
                TraceEvent::Cache(r) => match r.decision {
                    CacheDecision::HitMemory => mem_hits += 1,
                    CacheDecision::HitSerializedMemory => {
                        // Serialized hits are memory hits; `ser_mem_hits`
                        // is the serialized subset of `mem_hits`. Hits only
                        // happen while the reading app has a job open, so
                        // the open-job map attributes the per-job counter.
                        mem_hits += 1;
                        ser_mem_hits += 1;
                        if let Some(job) = open.get(&r.app) {
                            *ser_hits_by_job.entry((r.app, *job)).or_default() += 1;
                        }
                    }
                    CacheDecision::SerializeInMemory
                    | CacheDecision::DeserializeInMemory
                    | CacheDecision::PromoteToSerializedMemory => ser_transitions += 1,
                    CacheDecision::HitDisk => disk_hits += 1,
                    CacheDecision::MissRecompute => misses += 1,
                    CacheDecision::EvictToDisk => {
                        evictions_to_disk += 1;
                        *spilled.entry(r.executor).or_default() += r.bytes;
                    }
                    CacheDecision::EvictDiscard => {
                        evictions_discard += 1;
                        *discarded.entry(r.executor).or_default() += r.bytes;
                    }
                    _ => {}
                },
                TraceEvent::Recompute { app, job, id, duration, .. } => {
                    recomputes += 1;
                    *recompute_by.entry((*app, *job, id.rdd)).or_default() += *duration;
                }
                TraceEvent::TaskRetry { app, job, cause, wasted: w, .. } => {
                    match cause {
                        FaultCause::Transient => task_retries += 1,
                        FaultCause::ExecutorLost => tasks_lost += 1,
                    }
                    wasted += *w;
                    *recovery_by_job.entry((*app, *job)).or_default() += *w;
                }
                TraceEvent::RecoveryReplay { app, job, duration, .. } => {
                    replay += *duration;
                    *recovery_by_job.entry((*app, *job)).or_default() += *duration;
                }
                TraceEvent::ExecutorCrashed { blocks_lost: b, bytes_lost: by, .. } => {
                    // Map-output losses are counted from the per-output
                    // events below (a crash emits both a summary and the
                    // per-output events; counting the summary too would
                    // double-count).
                    crashes += 1;
                    blocks_lost += b;
                    bytes_lost += *by;
                }
                TraceEvent::MapOutputLost { .. } => map_lost += 1,
                TraceEvent::MapOutputRecovered { .. } => map_recovered += 1,
                TraceEvent::BlockRecovered { .. } => blocks_recovered += 1,
                TraceEvent::StageResubmitted { .. } => resubmitted += 1,
                TraceEvent::Straggler { delay, .. } => {
                    stragglers += 1;
                    straggler_delay += *delay;
                }
                TraceEvent::Speculation { app, job, copy_won, wasted: w, .. } => {
                    spec_launched += 1;
                    if *copy_won {
                        spec_wins += 1;
                    }
                    spec_wasted += *w;
                    *spec_by_job.entry((*app, *job)).or_default() += 1;
                }
                TraceEvent::SpillQuarantined { .. } => quarantined += 1,
                TraceEvent::FetchRetry { backoff, .. } => {
                    fetch_retries += 1;
                    fetch_backoff += *backoff;
                }
                TraceEvent::FetchEscalated { .. } => escalations += 1,
                _ => {}
            }
        }
        recovery_by_job.retain(|_, t| *t > SimDuration::ZERO);

        // ... and require exact equality with the recorded metrics.
        let mut check = |what: &str, from_trace: String, from_metrics: String| {
            if from_trace != from_metrics {
                ds.push(Diagnostic::new(
                    DiagCode::TraceAggregateMismatch,
                    None,
                    format!("{what}: trace says {from_trace}, metrics say {from_metrics}"),
                    "an engine path updated this metric without recording the matching event"
                        .into(),
                ));
            }
        };
        check("task count", tasks.to_string(), metrics.tasks.to_string());
        check("job count", jobs.to_string(), metrics.jobs.to_string());
        if jobs > 0 {
            check(
                "completion time",
                last_completed.to_string(),
                metrics.completion_time.to_string(),
            );
        }
        check("memory hits", mem_hits.to_string(), metrics.mem_hits.to_string());
        check("serialized memory hits", ser_mem_hits.to_string(), metrics.ser_mem_hits.to_string());
        check(
            "serialized memory hits by (app, job)",
            fmt_map(&ser_hits_by_job),
            fmt_map(&metrics.ser_mem_hits_by_job),
        );
        check(
            "serialized-tier transitions",
            ser_transitions.to_string(),
            metrics.ser_transitions.to_string(),
        );
        check("disk hits", disk_hits.to_string(), metrics.disk_hits.to_string());
        check("recompute misses", misses.to_string(), metrics.recompute_misses.to_string());
        check("recompute spans", recomputes.to_string(), metrics.recompute_misses.to_string());
        check(
            "evictions to disk",
            evictions_to_disk.to_string(),
            metrics.evictions_to_disk.to_string(),
        );
        check(
            "evictions discarded",
            evictions_discard.to_string(),
            metrics.evictions_discard.to_string(),
        );
        check("busy time per executor", fmt_map(&busy), fmt_map(&metrics.busy_time_per_executor()));
        check(
            "spilled bytes per executor",
            fmt_map(&spilled),
            fmt_map(&metrics.spilled_bytes_per_executor),
        );
        check(
            "discarded bytes per executor",
            fmt_map(&discarded),
            fmt_map(&metrics.discarded_bytes_per_executor),
        );
        check(
            "recompute time by (app, job, rdd)",
            fmt_map(&recompute_by),
            fmt_map(&metrics.recompute_by_job_rdd),
        );
        let rec = &metrics.recovery;
        check("task retries", task_retries.to_string(), rec.task_retries.to_string());
        check("tasks lost to crash", tasks_lost.to_string(), rec.tasks_lost_to_crash.to_string());
        check("wasted time", wasted.to_string(), rec.wasted_time.to_string());
        check("lineage replay time", replay.to_string(), rec.lineage_replay_time.to_string());
        check(
            "recovery time by job",
            fmt_map(&recovery_by_job),
            fmt_map(&rec.recovery_time_by_job),
        );
        check("executor crashes", crashes.to_string(), rec.executor_crashes.to_string());
        check("blocks lost", blocks_lost.to_string(), rec.blocks_lost.to_string());
        check("bytes lost", bytes_lost.to_string(), rec.bytes_lost.to_string());
        check("map outputs lost", map_lost.to_string(), rec.map_outputs_lost.to_string());
        check(
            "map outputs recovered",
            map_recovered.to_string(),
            rec.map_outputs_recovered.to_string(),
        );
        check("blocks recovered", blocks_recovered.to_string(), rec.blocks_recovered.to_string());
        check("stages resubmitted", resubmitted.to_string(), rec.stages_resubmitted.to_string());
        check("spills quarantined", quarantined.to_string(), rec.spills_quarantined.to_string());
        check("fetch retries", fetch_retries.to_string(), rec.fetch_retries.to_string());
        check("fetch backoff time", fetch_backoff.to_string(), rec.fetch_backoff_time.to_string());
        check("fetch escalations", escalations.to_string(), rec.fetch_escalations.to_string());
        let spec = &metrics.speculation;
        check("stragglers", stragglers.to_string(), spec.stragglers.to_string());
        check("straggler delay", straggler_delay.to_string(), spec.straggler_delay.to_string());
        check("speculative copies", spec_launched.to_string(), spec.launched.to_string());
        check("speculation wins", spec_wins.to_string(), spec.wins.to_string());
        check("speculation wasted time", spec_wasted.to_string(), spec.wasted.to_string());
        check(
            "speculative copies by (app, job)",
            fmt_map(&spec_by_job),
            fmt_map(&metrics.speculation_by_job),
        );
    }

    fn check_pairing(&self, ds: &mut Vec<Diagnostic>) {
        // Replay memory residency per (executor, block): inserts must hit
        // an empty slot, removals a full one. (The disk tier is not
        // replayed: a full disk silently rejects inserts by design, so
        // disk occupancy is not derivable from decisions alone.)
        let mut resident: FxHashMap<(ExecutorId, BlockId), ()> = FxHashMap::default();
        for ev in &self.events {
            let TraceEvent::Cache(r) = ev else { continue };
            let key = (r.executor, r.id);
            if r.decision.inserts_memory() {
                if resident.insert(key, ()).is_some() {
                    ds.push(Diagnostic::new(
                        DiagCode::TraceUnpairedCacheEvent,
                        Some(r.id.rdd),
                        format!(
                            "{} of {} on {} at {}, but the block is already memory-resident there",
                            r.decision.as_str(),
                            r.id,
                            r.executor,
                            r.at
                        ),
                        "double admission without an intervening eviction".into(),
                    ));
                }
            } else if r.decision.removes_memory() && resident.remove(&key).is_none() {
                ds.push(Diagnostic::new(
                    DiagCode::TraceUnpairedCacheEvent,
                    Some(r.id.rdd),
                    format!(
                        "{} of {} on {} at {}, but no earlier admission put it there",
                        r.decision.as_str(),
                        r.id,
                        r.executor,
                        r.at
                    ),
                    "every eviction must pair with an earlier admit".into(),
                ));
            }
        }
    }
}

/// Formats nanoseconds as Chrome's microsecond timestamps, keeping the
/// nanosecond fraction (three decimals) so the export is lossless.
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

/// Deterministic rendering of a map, sorted by key (both sides of an
/// aggregate comparison go through this, so hash order never matters).
fn fmt_map<K: Ord + Copy + std::fmt::Debug, V: std::fmt::Debug>(m: &FxHashMap<K, V>) -> String {
    let mut entries: Vec<_> = m.iter().collect();
    entries.sort_by_key(|(k, _)| **k);
    let mut out = String::from("{");
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{k:?}: {v:?}");
    }
    out.push('}');
    out
}

/// JSON string literal with the minimal escaping the exporter needs.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn event_name(ev: &TraceEvent) -> &'static str {
    match ev {
        TraceEvent::JobStarted { .. } => "job-started",
        TraceEvent::JobCompleted { .. } => "job-completed",
        TraceEvent::TaskPlanned { .. } => "task-planned",
        TraceEvent::TaskRetry { .. } => "task-retry",
        TraceEvent::Recompute { .. } => "recompute",
        TraceEvent::RecoveryReplay { .. } => "recovery-replay",
        TraceEvent::ExecutorCrashed { .. } => "executor-crashed",
        TraceEvent::MapOutputLost { .. } => "map-output-lost",
        TraceEvent::MapOutputRecovered { .. } => "map-output-recovered",
        TraceEvent::BlockRecovered { .. } => "block-recovered",
        TraceEvent::StageResubmitted { .. } => "stage-resubmitted",
        TraceEvent::Straggler { .. } => "straggler",
        TraceEvent::Speculation { .. } => "speculation",
        TraceEvent::SpillQuarantined { .. } => "spill-quarantined",
        TraceEvent::FetchRetry { .. } => "fetch-retry",
        TraceEvent::FetchEscalated { .. } => "fetch-escalated",
        TraceEvent::TaskCommitted { .. } => "task",
        TraceEvent::Cache(_) => "cache",
    }
}

fn event_detail(ev: &TraceEvent) -> String {
    match ev {
        TraceEvent::JobStarted { app, job, target, .. } => format!("{app}/{job} -> {target}"),
        TraceEvent::JobCompleted { app, job, .. } => format!("{app}/{job}"),
        TraceEvent::TaskPlanned { app, job, stage_output, partition, executor, .. } => {
            format!("{stage_output}[{partition}] of {app}/{job} on {executor}")
        }
        TraceEvent::TaskRetry {
            app, job, stage_output, partition, attempt, cause, wasted, ..
        } => {
            format!(
                "{stage_output}[{partition}] of {app}/{job} attempt {attempt} died ({cause:?}), \
                 wasted {wasted}"
            )
        }
        TraceEvent::Recompute { app, job, id, executor, depth, duration, .. } => {
            format!("{id} in {app}/{job} on {executor}, depth {depth}, {duration}")
        }
        TraceEvent::RecoveryReplay { app, job, stage_output, partition, duration, .. } => {
            format!("{stage_output}[{partition}] of {app}/{job} replayed {duration}")
        }
        TraceEvent::ExecutorCrashed {
            executor, blocks_lost, bytes_lost, map_outputs_lost, ..
        } => {
            format!(
                "{executor} lost {blocks_lost} blocks ({bytes_lost}), \
                 {map_outputs_lost} map outputs"
            )
        }
        TraceEvent::MapOutputLost { child, dep_idx, map_part, .. }
        | TraceEvent::MapOutputRecovered { child, dep_idx, map_part, .. } => {
            format!("shuffle ({child}, {dep_idx}) map {map_part}")
        }
        TraceEvent::BlockRecovered { id, .. } => id.to_string(),
        TraceEvent::StageResubmitted { app, job, stage_output, .. } => {
            format!("{stage_output} of {app}/{job}")
        }
        TraceEvent::Straggler { app, job, stage_output, partition, delay, .. } => {
            format!("{stage_output}[{partition}] of {app}/{job} delayed {delay}")
        }
        TraceEvent::Speculation {
            app,
            job,
            stage_output,
            partition,
            copy_executor,
            copy_won,
            wasted,
            ..
        } => {
            let outcome = if *copy_won { "copy won" } else { "copy lost" };
            format!(
                "{stage_output}[{partition}] of {app}/{job}: copy on {copy_executor} {outcome}, \
                 wasted {wasted}"
            )
        }
        TraceEvent::SpillQuarantined { executor, id, bytes, .. } => {
            format!("{id} on {executor} ({bytes})")
        }
        TraceEvent::FetchRetry {
            app, job, child, dep_idx, reduce_part, attempt, backoff, ..
        } => {
            format!(
                "shuffle ({child}, {dep_idx}) reduce {reduce_part} of {app}/{job} attempt \
                 {attempt} failed, backing off {backoff}"
            )
        }
        TraceEvent::FetchEscalated { app, job, child, dep_idx, reduce_part, .. } => {
            format!(
                "shuffle ({child}, {dep_idx}) reduce {reduce_part} of {app}/{job} exhausted \
                 its retry budget; parent map outputs regenerated"
            )
        }
        TraceEvent::TaskCommitted { .. } | TraceEvent::Cache(_) => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(at_ms: u64, exec: u32, rdd: u32, part: u32, decision: CacheDecision) -> TraceEvent {
        TraceEvent::Cache(CacheRecord {
            at: SimTime::ZERO + SimDuration::from_millis(at_ms),
            app: AppId(0),
            executor: ExecutorId(exec),
            id: BlockId::new(RddId(rdd), part),
            bytes: ByteSize::from_kib(4),
            decision,
            rationale: None,
        })
    }

    fn task(job: u32, part: u32, exec: u32, slot: u32, start_ms: u64, end_ms: u64) -> TraceEvent {
        task_of(0, job, part, exec, slot, start_ms, end_ms)
    }

    #[allow(clippy::too_many_arguments)]
    fn task_of(
        app: u32,
        job: u32,
        part: u32,
        exec: u32,
        slot: u32,
        start_ms: u64,
        end_ms: u64,
    ) -> TraceEvent {
        TraceEvent::TaskCommitted {
            app: AppId(app),
            job: JobId(job),
            stage_output: RddId(1),
            partition: part,
            executor: ExecutorId(exec),
            slot,
            start: SimTime::ZERO + SimDuration::from_millis(start_ms),
            end: SimTime::ZERO + SimDuration::from_millis(end_ms),
        }
    }

    fn job_started(at_ms: u64, app: u32, job: u32) -> TraceEvent {
        TraceEvent::JobStarted {
            at: SimTime::ZERO + SimDuration::from_millis(at_ms),
            app: AppId(app),
            job: JobId(job),
            target: RddId(1),
        }
    }

    fn job_completed(at_ms: u64, app: u32, job: u32) -> TraceEvent {
        TraceEvent::JobCompleted {
            at: SimTime::ZERO + SimDuration::from_millis(at_ms),
            app: AppId(app),
            job: JobId(job),
        }
    }

    fn minimal_log() -> (TraceLog, Metrics) {
        let mut log = TraceLog::new();
        log.record(job_started(0, 0, 0));
        log.record(task(0, 0, 0, 0, 0, 10));
        log.record(task(0, 1, 0, 0, 10, 25));
        log.record(job_completed(25, 0, 0));
        let mut m = Metrics::new();
        m.tasks = 2;
        m.jobs = 1;
        m.completion_time = SimTime::ZERO + SimDuration::from_millis(25);
        m.task_traces = vec![
            crate::metrics::TaskTrace {
                app: AppId(0),
                job: JobId(0),
                stage_output: RddId(1),
                partition: 0,
                executor: ExecutorId(0),
                slot: 0,
                start: SimTime::ZERO,
                end: SimTime::ZERO + SimDuration::from_millis(10),
                charge: crate::metrics::TaskCharge::default(),
            },
            crate::metrics::TaskTrace {
                app: AppId(0),
                job: JobId(0),
                stage_output: RddId(1),
                partition: 1,
                executor: ExecutorId(0),
                slot: 0,
                start: SimTime::ZERO + SimDuration::from_millis(10),
                end: SimTime::ZERO + SimDuration::from_millis(25),
                charge: crate::metrics::TaskCharge::default(),
            },
        ];
        (log, m)
    }

    #[test]
    fn clean_log_validates() {
        let (log, m) = minimal_log();
        let report = log.validate(&m);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn span_violations_are_ba401() {
        let (mut log, m) = minimal_log();
        // A task committed after the job closed.
        log.record(task(0, 2, 0, 0, 25, 30));
        let report = log.validate(&m);
        assert!(report.has(DiagCode::TraceSpanNesting));

        // Overlapping spans on the same slot.
        let mut log = TraceLog::new();
        log.record(job_started(0, 0, 0));
        log.record(task(0, 0, 0, 0, 0, 10));
        log.record(task(0, 1, 0, 0, 5, 15)); // starts before the previous ends
        log.record(job_completed(15, 0, 0));
        assert!(log.validate(&Metrics::new()).has(DiagCode::TraceSpanNesting));
    }

    #[test]
    fn interleaved_app_jobs_validate_cleanly() {
        // Two apps with concurrently open jobs: legal under the per-app
        // open-job set, and each app's tasks attribute to its own job.
        let mut log = TraceLog::new();
        log.record(job_started(0, 0, 0));
        log.record(job_started(0, 1, 0));
        log.record(task_of(0, 0, 0, 0, 0, 0, 10));
        log.record(task_of(1, 0, 0, 0, 0, 10, 30));
        log.record(job_completed(10, 0, 0));
        log.record(job_completed(30, 1, 0));
        let mut m = Metrics::new();
        m.tasks = 2;
        m.jobs = 2;
        m.completion_time = SimTime::ZERO + SimDuration::from_millis(30);
        m.task_traces = vec![];
        let report = log.validate(&m);
        assert!(!report.has(DiagCode::TraceSpanNesting), "{:?}", report.diagnostics);

        // A second job from an app whose first is still open stays a BA401.
        let mut bad = TraceLog::new();
        bad.record(job_started(0, 0, 0));
        bad.record(job_started(5, 0, 1));
        assert!(bad.validate(&Metrics::new()).has(DiagCode::TraceSpanNesting));
    }

    #[test]
    fn multi_app_completion_is_the_max_not_the_last() {
        // App 1 finishes before app 0 but its completion is recorded
        // later; the aggregate check must compare against the max.
        let mut log = TraceLog::new();
        log.record(job_started(0, 0, 0));
        log.record(job_started(0, 1, 0));
        log.record(job_completed(40, 0, 0));
        log.record(job_completed(20, 1, 0));
        let mut m = Metrics::new();
        m.jobs = 2;
        m.completion_time = SimTime::ZERO + SimDuration::from_millis(40);
        assert!(!log.validate(&m).has(DiagCode::TraceAggregateMismatch));
    }

    #[test]
    fn aggregate_drift_is_ba402() {
        let (log, mut m) = minimal_log();
        m.mem_hits = 3; // metrics claim hits the trace never saw
        let report = log.validate(&m);
        assert!(report.has(DiagCode::TraceAggregateMismatch));
    }

    #[test]
    fn unpaired_eviction_is_ba403() {
        let (mut log, mut m) = minimal_log();
        log.record(cache(25, 0, 5, 0, CacheDecision::EvictDiscard));
        m.record_eviction(ExecutorId(0), ByteSize::from_kib(4), false);
        let report = log.validate(&m);
        assert!(report.has(DiagCode::TraceUnpairedCacheEvent));

        // Admit then evict pairs cleanly; double admit does not.
        let (mut log, mut m) = minimal_log();
        log.record(cache(5, 0, 5, 0, CacheDecision::AdmitMemory));
        log.record(cache(25, 0, 5, 0, CacheDecision::EvictDiscard));
        m.record_eviction(ExecutorId(0), ByteSize::from_kib(4), false);
        assert!(log.validate(&m).is_clean());
        log.record(cache(26, 0, 6, 0, CacheDecision::AdmitMemory));
        log.record(cache(27, 0, 6, 0, CacheDecision::AdmitMemory));
        assert!(log.validate(&m).has(DiagCode::TraceUnpairedCacheEvent));
    }

    #[test]
    fn chrome_export_is_valid_shape_and_deterministic() {
        let (mut log, _) = minimal_log();
        log.record(cache(5, 0, 5, 0, CacheDecision::AdmitMemory));
        let a = log.chrome_json();
        let b = log.chrome_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.trim_end().ends_with("]}"));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("admit-mem"));
        // Nanosecond-lossless microsecond timestamps.
        assert!(a.contains("\"ts\":10000.000"));
    }

    #[test]
    fn ledger_groups_by_job_and_shows_rationale() {
        let (mut log, _) = minimal_log();
        log.record(job_started(25, 0, 1));
        log.record(TraceEvent::Cache(CacheRecord {
            at: SimTime::ZERO + SimDuration::from_millis(26),
            app: AppId(0),
            executor: ExecutorId(1),
            id: BlockId::new(RddId(5), 2),
            bytes: ByteSize::from_kib(8),
            decision: CacheDecision::EvictDiscard,
            rationale: Some("refcount=0".into()),
        }));
        log.record(job_completed(30, 0, 1));
        let ledger = log.ledger();
        assert!(ledger.contains("[app-0/job-1]"));
        assert!(ledger.contains("evict-discard"));
        assert!(ledger.contains("why: refcount=0"));
    }

    #[test]
    fn ledger_attributes_by_the_records_app() {
        // App 1 has no open job when app 0's decision lands; attribution
        // follows the record's app, not whichever job opened last.
        let mut log = TraceLog::new();
        log.record(job_started(0, 0, 0));
        log.record(job_started(1, 1, 0));
        log.record(TraceEvent::Cache(CacheRecord {
            at: SimTime::ZERO + SimDuration::from_millis(2),
            app: AppId(0),
            executor: ExecutorId(0),
            id: BlockId::new(RddId(5), 0),
            bytes: ByteSize::from_kib(4),
            decision: CacheDecision::AdmitMemory,
            rationale: None,
        }));
        log.record(job_completed(3, 1, 0));
        log.record(job_completed(4, 0, 0));
        let ledger = log.ledger();
        assert!(ledger.contains("[app-0/job-0]"));
        assert!(!ledger.contains("[app-1/job-0]"));
    }

    #[test]
    fn explain_reconstructs_block_history() {
        let (mut log, _) = minimal_log();
        log.record(cache(5, 0, 5, 0, CacheDecision::AdmitMemory));
        log.record(cache(25, 0, 5, 0, CacheDecision::EvictToDisk));
        let text = log.explain(BlockId::new(RddId(5), 0));
        assert!(text.contains("admit-mem"));
        assert!(text.contains("evict-to-disk"));
        assert!(text.contains("memory not resident"));
        assert!(text.contains("disk resident on exec-0"));
        let none = log.explain(BlockId::new(RddId(9), 0));
        assert!(none.contains("no cache decisions"));
    }

    #[test]
    fn diff_pinpoints_the_first_divergence() {
        let (a, _) = minimal_log();
        let (mut b, _) = minimal_log();
        assert!(a.diff(&b).contains("identical"));
        b.record(cache(30, 0, 5, 0, CacheDecision::AdmitMemory));
        assert!(a.diff(&b).contains("lengths diverge"));
        let mut c = TraceLog::new();
        c.record(job_started(0, 0, 7));
        c.record(task(0, 0, 0, 0, 0, 10));
        assert!(a.diff(&c).contains("diverge at event 0"));
    }
}
