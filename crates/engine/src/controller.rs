//! The cache-controller interface: the engine's unified integration surface
//! for caching, eviction and recovery decisions.
//!
//! Existing systems split these decisions across three independent layers
//! (paper §3); this trait deliberately exposes *all* of them to a single
//! implementation so that baselines (LRU & friends, which only implement
//! the eviction hook meaningfully) and Blaze (which implements the unified
//! decision layer, §5.6) plug into the same engine.

use crate::config::HardwareModel;
use blaze_common::ids::{AppId, BlockId, ExecutorId, JobId, RddId};
use blaze_common::{ByteSize, SimDuration, SimTime};
use blaze_dataflow::{JobPlan, Plan};

/// Metadata of one materialized partition, as seen by controllers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockInfo {
    /// Which partition.
    pub id: BlockId,
    /// Logical (deserialized) size.
    pub bytes: ByteSize,
    /// Serialization cost factor of the element type.
    pub ser_factor: f64,
    /// Executor the partition lives on / was produced on.
    pub executor: ExecutorId,
}

/// A partition-computation event (one lineage edge executed).
///
/// This is the profiling feed of the paper's §5.3: the compute time is the
/// edge cost `cost_{k->i}`, and size/location are the partition metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionEvent {
    /// The produced partition.
    pub info: BlockInfo,
    /// Time to compute this partition from its direct inputs (one edge, not
    /// the recursive lineage).
    pub edge_compute: SimDuration,
    /// Job during which the computation happened.
    pub job: JobId,
    /// True if this partition had been materialized before (recomputation).
    pub recomputed: bool,
}

/// Where to place a block the controller admitted for caching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Store in the executor's memory store.
    Memory,
    /// Store in the executor's disk store (serialize + write).
    Disk,
    /// Do not cache.
    Skip,
}

/// What to do with an eviction victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimAction {
    /// Drop the data (state m -> u); later access recomputes.
    Discard,
    /// Spill to the disk store (state m -> d); later access reads it back.
    ToDisk,
}

/// A state transition requested by the controller outside the task path
/// (applied by the engine after stage completion / job submission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateCommand {
    /// Drop every cached block of this RDD (auto-unpersist, §5.6).
    UnpersistRdd(RddId),
    /// Drop one cached block wherever it is.
    UnpersistBlock(BlockId),
    /// Move one memory-resident block to disk (m -> d).
    SpillToDisk(BlockId),
    /// Move one disk-resident block into memory if it fits (d -> m).
    PromoteToMemory(BlockId),
    /// Serialize a memory-resident block in place (m -> s): the block stays
    /// in the memory store at its footprint-scaled size, and later accesses
    /// pay a deserialization. Emitted only by serialized-tier decision
    /// paths (`ser_tier`).
    SerializeInMemory(BlockId),
    /// Deserialize a serialized-memory block in place if the full size fits
    /// (s -> m).
    DeserializeInMemory(BlockId),
    /// Move one disk-resident block into memory in serialized form if its
    /// footprint fits (d -> s); pays a disk read but no deserialization.
    PromoteToSerializedMemory(BlockId),
}

/// Which tier of an executor's store a block entered, as reported to
/// [`CacheController::on_inserted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreTier {
    /// The memory store, deserialized (full logical footprint).
    Memory,
    /// The memory store, serialized (footprint-scaled size; accesses pay a
    /// deserialization).
    SerializedMemory,
    /// The disk store.
    Disk,
}

impl StoreTier {
    /// True for both memory tiers (they share the memory store's capacity).
    pub fn in_memory(self) -> bool {
        matches!(self, StoreTier::Memory | StoreTier::SerializedMemory)
    }
}

/// What the solver degradation ladder did for one job's decision solve
/// (see `BlazeConfig::solve_deadline` in `blaze-core`): which rung actually
/// ran and how many per-executor instances were stepped down or skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationNote {
    /// Short label of the most degraded rung that ran (e.g. `"greedy"`,
    /// `"lru-passthrough"`).
    pub rung: &'static str,
    /// Per-executor instances solved on a lower rung than requested.
    pub degraded: u64,
    /// Per-executor instances skipped entirely (LRU passthrough: the
    /// engine's recency eviction is the fallback policy).
    pub passthrough: u64,
}

/// Read-only context handed to controller callbacks.
#[derive(Debug, Clone, Copy)]
pub struct CtrlCtx {
    /// Current simulated time.
    pub now: SimTime,
    /// The application the engine is currently executing on behalf of.
    /// Always `app-0` outside a multi-app session, so single-app
    /// controllers can ignore it; partition-aware policies use it to
    /// attribute accesses and scope victim choice per application.
    pub app: AppId,
    /// Hardware model (for disk-cost estimation, Eq. 3).
    pub hardware: HardwareModel,
    /// Per-executor memory-store capacity.
    pub memory_capacity: ByteSize,
    /// Per-executor disk-store capacity ("abundant" in the paper's setup,
    /// but the Eq. 6 extension constrains it).
    pub disk_capacity: ByteSize,
    /// Number of executors.
    pub executors: usize,
}

/// The unified decision interface for caching, eviction and recovery.
///
/// All methods have conservative defaults so that simple policies only
/// override what they care about. The engine guarantees:
///
/// - `choose_victims` candidates never include blocks of the same RDD as the
///   incoming block (Spark never evicts the RDD being written);
/// - commands returned from `on_stage_complete` / `on_job_submit` are applied
///   best-effort (e.g. a promotion that no longer fits is skipped);
/// - every memory/disk insert and removal is reported via `on_inserted` /
///   `on_evicted`, including those triggered by [`StateCommand`]s, so the
///   controller's view of residency can be kept consistent.
pub trait CacheController: Send {
    /// Short system name used in reports (e.g. `"Spark (MEM_ONLY)"`).
    fn name(&self) -> String;

    /// Whether a freshly materialized partition should be considered for
    /// caching. `annotated` reflects the user's `cache()` call on the RDD.
    /// Baselines return `annotated`; auto-caching systems decide themselves.
    fn should_cache(&mut self, _ctx: &CtrlCtx, _block: &BlockInfo, annotated: bool) -> bool {
        annotated
    }

    /// Chooses the tier for an admitted block. Defaults to memory.
    fn admit(&mut self, _ctx: &CtrlCtx, _block: &BlockInfo) -> Admission {
        Admission::Memory
    }

    /// Chooses victims (in eviction order) to free at least `needed` bytes
    /// of memory on `exec`. `resident` lists the candidate blocks currently
    /// in that executor's memory store. Returning fewer bytes than `needed`
    /// makes the engine fall back to [`CacheController::on_admission_failure`].
    fn choose_victims(
        &mut self,
        _ctx: &CtrlCtx,
        _exec: ExecutorId,
        _needed: ByteSize,
        _incoming: &BlockInfo,
        _resident: &[BlockInfo],
    ) -> Vec<(BlockId, VictimAction)> {
        Vec::new()
    }

    /// Placement when memory admission failed even after eviction.
    /// MEM_ONLY-style systems skip; MEM+DISK-style systems spill.
    fn on_admission_failure(&mut self, _ctx: &CtrlCtx, _block: &BlockInfo) -> Admission {
        Admission::Skip
    }

    /// Placement after a block was recovered from disk on a cache miss.
    /// Returning `Memory` promotes it (subject to the usual eviction path);
    /// the default leaves it on disk.
    fn readmit_after_disk_read(&mut self, _ctx: &CtrlCtx, _block: &BlockInfo) -> Admission {
        Admission::Disk
    }

    /// If true, memory-resident cached data is kept serialized (an external
    /// store such as Alluxio): every memory hit pays (de)serialization, and
    /// the stored footprint shrinks by [`CacheController::memory_footprint_factor`].
    fn serialized_in_memory(&self) -> bool {
        false
    }

    /// Memory footprint multiplier for serialized-in-memory stores.
    fn memory_footprint_factor(&self) -> f64 {
        1.0
    }

    /// A cached block was read (memory or disk hit).
    fn on_access(&mut self, _ctx: &CtrlCtx, _id: BlockId) {}

    /// The policy's current belief about `id`, as a short human-readable
    /// rationale (e.g. `"lru: last access at t+1.2s"`, `"lrc: refcount=2"`).
    /// Captured by the event trace *before* a decision is applied, so
    /// "why was this block evicted?" is answerable from the trace alone.
    /// Only called when tracing is enabled; the default knows nothing.
    fn explain_block(&self, _id: BlockId) -> Option<String> {
        None
    }

    /// A block entered a store at the given tier.
    fn on_inserted(&mut self, _ctx: &CtrlCtx, _info: &BlockInfo, _tier: StoreTier) {}

    /// A block left the memory store (evicted, spilled or unpersisted).
    fn on_evicted(&mut self, _ctx: &CtrlCtx, _id: BlockId) {}

    /// A partition was computed (the profiling feed; called for *every*
    /// materialized partition, cached or not).
    fn on_partition_computed(&mut self, _ctx: &CtrlCtx, _event: &PartitionEvent) {}

    /// A job is about to run. Returning commands lets cost-aware systems
    /// restate partitions ahead of the job (Blaze triggers its ILP here,
    /// §5.6). `plan` is the full lineage known so far.
    fn on_job_submit(
        &mut self,
        _ctx: &CtrlCtx,
        _job: JobId,
        _job_plan: &JobPlan,
        _plan: &Plan,
    ) -> Vec<StateCommand> {
        Vec::new()
    }

    /// A stage finished. Blaze runs auto-caching/auto-unpersist here (§5.6);
    /// MRD uses it to prefetch.
    fn on_stage_complete(
        &mut self,
        _ctx: &CtrlCtx,
        _stage_output: RddId,
        _job: JobId,
        _plan: &Plan,
    ) -> Vec<StateCommand> {
        Vec::new()
    }

    /// Drained by the engine right after [`CacheController::on_job_submit`]:
    /// when the controller's decision path stepped down its solver
    /// degradation ladder during that submit, the note is recorded into the
    /// trace ledger as a `solver-degrade` cache decision. Controllers
    /// without a deadline (the default) never degrade.
    fn take_degradation(&mut self) -> Option<DegradationNote> {
        None
    }

    /// Extra preflight diagnostics contributed by the controller, merged
    /// into the engine's plan audit before the first job runs (e.g. BA304
    /// when the configured solve deadline cannot fit even the cheapest
    /// rung). The default contributes nothing.
    fn preflight_diagnostics(&self) -> Vec<blaze_audit::Diagnostic> {
        Vec::new()
    }
}

/// A controller that never caches anything (for engine tests and as the
/// degenerate baseline: every reuse recomputes from lineage).
#[derive(Debug, Default, Clone)]
pub struct NoCacheController;

impl CacheController for NoCacheController {
    fn name(&self) -> String {
        "NoCache".into()
    }

    fn should_cache(&mut self, _ctx: &CtrlCtx, _block: &BlockInfo, _annotated: bool) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_conservative() {
        let mut c = NoCacheController;
        let hw = HardwareModel::default();
        let ctx = CtrlCtx {
            now: SimTime::ZERO,
            app: AppId(0),
            hardware: hw,
            memory_capacity: ByteSize::from_mib(1),
            disk_capacity: ByteSize::from_gib(1),
            executors: 2,
        };
        let info = BlockInfo {
            id: BlockId::new(RddId(1), 0),
            bytes: ByteSize::from_kib(1),
            ser_factor: 1.0,
            executor: ExecutorId(0),
        };
        assert!(!c.should_cache(&ctx, &info, true));
        assert_eq!(c.admit(&ctx, &info), Admission::Memory);
        assert_eq!(c.on_admission_failure(&ctx, &info), Admission::Skip);
        assert_eq!(c.readmit_after_disk_read(&ctx, &info), Admission::Disk);
        assert!(!c.serialized_in_memory());
        assert_eq!(c.memory_footprint_factor(), 1.0);
        assert!(c
            .choose_victims(&ctx, ExecutorId(0), ByteSize::from_kib(1), &info, &[])
            .is_empty());
        assert!(c.take_degradation().is_none());
        assert!(c.preflight_diagnostics().is_empty());
    }
}
