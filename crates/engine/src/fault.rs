//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes every failure an application run will suffer as
//! a pure function of a seed, simulated-clock time and task coordinates —
//! never the host clock or OS randomness, so a faulty run replays
//! bit-identically across processes and worker-thread counts. Three failure
//! classes are injected (see DESIGN.md "Failure model"):
//!
//! - **Transient task failures**: each task attempt flips a seeded coin
//!   keyed by `(job, stage, partition, attempt)`; failed attempts are
//!   retried up to [`FaultPlan::max_task_retries`] times and their wasted
//!   time is charged to the slot and attributed to recovery metrics.
//! - **Executor crashes**: at the listed simulated times, an executor loses
//!   its memory and disk stores (and, without an external shuffle service,
//!   its shuffle outputs) at the next task-commit boundary; in-flight tasks
//!   placed on it are rescheduled onto survivors.
//! - **Map-output loss**: with `external_shuffle_service` disabled, a
//!   seeded coin keyed by `(job, shuffle, map task)` drops map outputs at
//!   job start; consumers recover them through lineage, Spark-style.
//! - **Stragglers**: a seeded coin keyed by `(job, stage, partition)` marks
//!   tasks whose execution time is multiplied by
//!   [`FaultPlan::straggler_slowdown`]; the scheduler launches a speculative
//!   copy when the slowed task blows the stage's quantile-based deadline and
//!   commits whichever attempt finishes first.
//! - **Corrupted spills**: each block written to the disk tier carries an
//!   FxHash-based checksum; a seeded coin keyed by `(rdd, partition, nth
//!   spill)` flips a checksum bit so the next read detects the corruption,
//!   quarantines the block and falls back to lineage recompute.
//! - **Fetch failures**: each shuffle-fetch attempt flips a seeded coin;
//!   failed attempts wait out a capped exponential backoff on the sim clock
//!   and, once the retry budget is spent, escalate to regenerating the
//!   parent's map outputs through lineage.
//!
//! The default plan is fully disabled and adds zero cost: the engine takes
//! no fault path at all when [`FaultPlan::enabled`] is false.

use blaze_common::error::{BlazeError, Result};
use blaze_common::rng::{coord_coin, hash_coords};
use blaze_common::{SimDuration, SimTime};

/// Distinct coin streams, so the same coordinates never reuse a draw
/// across failure classes.
const STREAM_TASK: u64 = 1;
const STREAM_MAP_OUTPUT: u64 = 2;
const STREAM_STRAGGLER: u64 = 3;
const STREAM_SPILL_CORRUPTION: u64 = 4;
const STREAM_FETCH: u64 = 5;

/// Heuristic uncached-lineage depth a single retry budget can be expected
/// to replay: each retry re-executes the whole uncached chain inline, so
/// deeper chains both lengthen attempts and widen the transient-failure
/// exposure window. The BA301 preflight rule rejects plans whose uncached
/// depth exceeds `DEPTH_PER_ATTEMPT * max_attempts`.
pub const DEPTH_PER_ATTEMPT: usize = 32;

/// Quantile of a stage's observed (post-slowdown) task durations that
/// anchors the speculation deadline: a task is speculated upon once its
/// projected duration exceeds `quantile * SPECULATION_SLACK` — the same
/// shape as Spark's `spark.speculation.{quantile,multiplier}`.
pub const SPECULATION_QUANTILE: f64 = 0.75;

/// Multiplier applied to the quantile duration to form the deadline.
pub const SPECULATION_SLACK: f64 = 1.5;

/// Straggler slowdown beyond which a plan without speculative execution is
/// flagged by the BA302 preflight rule: tail latency grows linearly with
/// the slowdown and nothing in the schedule can claw it back.
pub const STRAGGLER_SLOWDOWN_BUDGET: f64 = 8.0;

/// Why an injected task attempt was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultCause {
    /// A transient failure drawn from [`FaultPlan::task_failure_rate`].
    Transient,
    /// The attempt was in flight on an executor that crashed.
    ExecutorLost,
}

/// One scheduled executor crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorCrash {
    /// Simulated time at which the crash fires. The executor dies at the
    /// first task-commit boundary whose frontier reaches this time (or at
    /// the next job boundary if the application is between jobs).
    pub at: SimTime,
    /// Index of the executor to kill. The machine is replaced immediately
    /// (same index, empty stores), as a cluster manager would.
    pub executor: usize,
}

/// A deterministic schedule of failures for one application run.
///
/// Carried on [`crate::config::ClusterConfig`]; the default plan injects
/// nothing. All draws are pure functions of `seed` and coordinates
/// (`blaze_common::rng::coord_coin`), so two runs of the same plan — at any
/// `worker_threads` — observe identical failures.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of every injection coin.
    pub seed: u64,
    /// Probability that any single task attempt fails transiently.
    /// Must be in `[0, 1)`: a rate of 1 could never succeed.
    pub task_failure_rate: f64,
    /// Retries allowed per task after its first attempt. A task whose
    /// `1 + max_task_retries` attempts all fail aborts the job.
    pub max_task_retries: u32,
    /// Scheduled executor crashes, ordered by time.
    pub crashes: Vec<ExecutorCrash>,
    /// Probability that a registered map output is lost at each job start.
    /// Only meaningful with `external_shuffle_service` off.
    pub map_output_loss_rate: f64,
    /// When true (the default, Spark's external shuffle service), shuffle
    /// outputs survive executor crashes and are never lost. When false, a
    /// crash drops the outputs the dead executor produced and
    /// `map_output_loss_rate` applies.
    pub external_shuffle_service: bool,
    /// Probability that any single task is a straggler (seeded per task).
    /// Must be in `[0, 1)`.
    pub straggler_rate: f64,
    /// Execution-time multiplier applied to straggling tasks. Must be
    /// finite and `>= 1`.
    pub straggler_slowdown: f64,
    /// Launch a speculative copy on another executor when a straggler blows
    /// the stage's quantile deadline (see [`SPECULATION_QUANTILE`]); the
    /// earlier finisher commits, the loser's slot time is charged to
    /// `Metrics::speculation`. On by default — only reachable when
    /// `straggler_rate > 0`.
    pub speculation: bool,
    /// Probability that a block spilled to the disk tier is corrupted
    /// (seeded per spill). Must be in `[0, 1)`. Reads detect the checksum
    /// mismatch, quarantine the block and recompute through lineage.
    pub spill_corruption_rate: f64,
    /// Probability that one shuffle-fetch attempt fails (seeded per
    /// attempt). Must be in `[0, 1)`.
    pub fetch_failure_rate: f64,
    /// Failed-fetch retries before escalating to regenerating the parent
    /// stage's map outputs through lineage. Must be `>= 1` when
    /// `fetch_failure_rate > 0`.
    pub max_fetch_retries: u32,
    /// Backoff wait after the first failed fetch attempt; doubles per
    /// retry. Must be positive when `fetch_failure_rate > 0`.
    pub fetch_backoff_base: SimDuration,
    /// Cap on a single backoff wait. Must be `>= fetch_backoff_base`.
    pub fetch_backoff_cap: SimDuration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            task_failure_rate: 0.0,
            max_task_retries: 3,
            crashes: Vec::new(),
            map_output_loss_rate: 0.0,
            external_shuffle_service: true,
            straggler_rate: 0.0,
            straggler_slowdown: 4.0,
            speculation: true,
            spill_corruption_rate: 0.0,
            fetch_failure_rate: 0.0,
            max_fetch_retries: 4,
            fetch_backoff_base: SimDuration::from_millis(10),
            fetch_backoff_cap: SimDuration::from_millis(200),
        }
    }
}

impl FaultPlan {
    /// True when the plan can inject at least one failure. A disabled plan
    /// keeps the engine on its zero-cost fast path.
    pub fn enabled(&self) -> bool {
        self.task_failure_rate > 0.0
            || !self.crashes.is_empty()
            || (!self.external_shuffle_service && self.map_output_loss_rate > 0.0)
            || self.straggler_rate > 0.0
            || self.spill_corruption_rate > 0.0
            || self.fetch_failure_rate > 0.0
    }

    /// Total attempts a task may consume (first run + retries).
    pub fn max_attempts(&self) -> u32 {
        self.max_task_retries.saturating_add(1)
    }

    /// Seeded coin: does attempt `attempt` of task `(job, stage, part)`
    /// fail transiently?
    pub fn task_attempt_fails(&self, job: u32, stage: u32, part: u32, attempt: u32) -> bool {
        coord_coin(
            self.seed,
            &[STREAM_TASK, u64::from(job), u64::from(stage), u64::from(part), u64::from(attempt)],
            self.task_failure_rate,
        )
    }

    /// Seeded coin: is map output `map_part` of the shuffle feeding
    /// `(child, dep_idx)` lost at the start of `job`?
    pub fn map_output_lost(&self, job: u32, child: u32, dep_idx: usize, map_part: usize) -> bool {
        if self.external_shuffle_service {
            return false;
        }
        coord_coin(
            self.seed,
            &[STREAM_MAP_OUTPUT, u64::from(job), u64::from(child), dep_idx as u64, map_part as u64],
            self.map_output_loss_rate,
        )
    }

    /// Seeded coin: is task `(job, stage, part)` a straggler? Stragglers
    /// are a property of the task, not the attempt: every attempt on the
    /// originally scheduled executor is slowed (the machine is slow), while
    /// a speculative copy elsewhere runs at full speed.
    pub fn task_straggles(&self, job: u32, stage: u32, part: u32) -> bool {
        coord_coin(
            self.seed,
            &[STREAM_STRAGGLER, u64::from(job), u64::from(stage), u64::from(part)],
            self.straggler_rate,
        )
    }

    /// Seeded coin: is the `seq`-th spill of block `(rdd, part)` to the
    /// disk tier corrupted? Keyed by a per-block spill sequence number so a
    /// quarantined-and-respilled block draws a fresh coin.
    pub fn spill_corrupted(&self, rdd: u32, part: u32, seq: u64) -> bool {
        coord_coin(
            self.seed,
            &[STREAM_SPILL_CORRUPTION, u64::from(rdd), u64::from(part), seq],
            self.spill_corruption_rate,
        )
    }

    /// Which checksum bit the corruption of [`Self::spill_corrupted`] flips
    /// (a deterministic function of the same coordinates).
    pub fn corruption_bit(&self, rdd: u32, part: u32, seq: u64) -> u32 {
        (hash_coords(
            self.seed,
            &[STREAM_SPILL_CORRUPTION, u64::from(rdd), u64::from(part), seq, u64::MAX],
        ) % 64) as u32
    }

    /// Seeded coin: does attempt `attempt` of fetching reduce partition
    /// `reduce_part` of the shuffle feeding `(child, dep_idx)` in `job`
    /// fail?
    pub fn fetch_attempt_fails(
        &self,
        job: u32,
        child: u32,
        dep_idx: usize,
        reduce_part: u32,
        attempt: u32,
    ) -> bool {
        coord_coin(
            self.seed,
            &[
                STREAM_FETCH,
                u64::from(job),
                u64::from(child),
                dep_idx as u64,
                u64::from(reduce_part),
                u64::from(attempt),
            ],
            self.fetch_failure_rate,
        )
    }

    /// Deterministic backoff wait after failed fetch attempt `attempt`
    /// (0-based): `min(base << attempt, cap)`, saturating.
    pub fn fetch_backoff(&self, attempt: u32) -> SimDuration {
        let base = self.fetch_backoff_base.as_nanos();
        let scaled = base.saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        SimDuration::from_nanos(scaled.min(self.fetch_backoff_cap.as_nanos()))
    }

    /// The deepest uncached lineage chain the retry budget can be expected
    /// to replay, or `None` when the plan is disabled (no bound applies).
    /// Used by the BA301 preflight rule.
    pub fn max_recoverable_depth(&self) -> Option<usize> {
        if self.enabled() {
            Some(DEPTH_PER_ATTEMPT * self.max_attempts() as usize)
        } else {
            None
        }
    }

    /// Validates the plan against the cluster's executor count.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for out-of-range rates, a zero retry
    /// budget alongside a positive failure rate, unordered crash times, or
    /// a crash targeting a nonexistent executor (or a cluster too small to
    /// survive one).
    pub fn validate(&self, executors: usize) -> Result<()> {
        let rate = self.task_failure_rate;
        if !rate.is_finite() || !(0.0..1.0).contains(&rate) {
            return Err(BlazeError::Config(format!(
                "fault plan: task_failure_rate must be in [0, 1) (got {rate}); a rate of 1 \
                 could never succeed"
            )));
        }
        let rate = self.map_output_loss_rate;
        if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
            return Err(BlazeError::Config(format!(
                "fault plan: map_output_loss_rate must be in [0, 1] (got {rate})"
            )));
        }
        if self.task_failure_rate > 0.0 && self.max_task_retries == 0 {
            return Err(BlazeError::Config(
                "fault plan: max_task_retries must be >= 1 when task_failure_rate > 0".into(),
            ));
        }
        let mut prev = SimTime::ZERO;
        for crash in &self.crashes {
            if crash.at < prev {
                return Err(BlazeError::Config(format!(
                    "fault plan: crash times must be non-decreasing ({} after {prev})",
                    crash.at
                )));
            }
            prev = crash.at;
            if crash.executor >= executors {
                return Err(BlazeError::Config(format!(
                    "fault plan: crash targets executor {} but the cluster has {executors}",
                    crash.executor
                )));
            }
        }
        if !self.crashes.is_empty() && executors < 2 {
            return Err(BlazeError::Config(
                "fault plan: executor crashes need >= 2 executors so in-flight tasks can be \
                 rescheduled onto a survivor"
                    .into(),
            ));
        }
        let rate = self.straggler_rate;
        if !rate.is_finite() || !(0.0..1.0).contains(&rate) {
            return Err(BlazeError::Config(format!(
                "fault plan: straggler_rate must be in [0, 1) (got {rate})"
            )));
        }
        if !self.straggler_slowdown.is_finite() || self.straggler_slowdown < 1.0 {
            return Err(BlazeError::Config(format!(
                "fault plan: straggler_slowdown must be finite and >= 1 (got {}); a \
                 multiplier below 1 would speed tasks up",
                self.straggler_slowdown
            )));
        }
        let rate = self.spill_corruption_rate;
        if !rate.is_finite() || !(0.0..1.0).contains(&rate) {
            return Err(BlazeError::Config(format!(
                "fault plan: spill_corruption_rate must be in [0, 1) (got {rate}); at 1 \
                 every respill would corrupt again and reads could never succeed"
            )));
        }
        let rate = self.fetch_failure_rate;
        if !rate.is_finite() || !(0.0..1.0).contains(&rate) {
            return Err(BlazeError::Config(format!(
                "fault plan: fetch_failure_rate must be in [0, 1) (got {rate}); at 1 \
                 every retry would fail and escalation would loop forever"
            )));
        }
        if self.fetch_failure_rate > 0.0 {
            if self.max_fetch_retries == 0 {
                return Err(BlazeError::Config(
                    "fault plan: max_fetch_retries must be >= 1 when fetch_failure_rate > 0".into(),
                ));
            }
            if self.fetch_backoff_base <= SimDuration::ZERO {
                return Err(BlazeError::Config(
                    "fault plan: fetch_backoff_base must be positive when fetch_failure_rate > 0"
                        .into(),
                ));
            }
            if self.fetch_backoff_cap < self.fetch_backoff_base {
                return Err(BlazeError::Config(format!(
                    "fault plan: fetch_backoff_cap ({}) must be >= fetch_backoff_base ({})",
                    self.fetch_backoff_cap, self.fetch_backoff_base
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_disabled_and_valid() {
        let plan = FaultPlan::default();
        assert!(!plan.enabled());
        plan.validate(1).unwrap();
        assert_eq!(plan.max_recoverable_depth(), None);
        assert!(!plan.task_attempt_fails(0, 0, 0, 0));
        assert!(!plan.map_output_lost(0, 0, 0, 0));
    }

    #[test]
    fn coins_are_deterministic_and_coordinate_keyed() {
        let plan = FaultPlan { seed: 42, task_failure_rate: 0.5, ..Default::default() };
        let a = plan.task_attempt_fails(1, 2, 3, 0);
        assert_eq!(a, plan.task_attempt_fails(1, 2, 3, 0));
        // Some nearby coordinate must differ (rate 0.5, 64 draws).
        let flips: Vec<bool> = (0..64).map(|p| plan.task_attempt_fails(1, 2, p, 0)).collect();
        assert!(flips.iter().any(|&f| f) && flips.iter().any(|&f| !f));
    }

    #[test]
    fn map_output_loss_requires_no_shuffle_service() {
        let with_ess = FaultPlan { seed: 7, map_output_loss_rate: 1.0, ..Default::default() };
        assert!(!with_ess.map_output_lost(0, 5, 0, 0));
        assert!(!with_ess.enabled());
        let no_ess = FaultPlan { external_shuffle_service: false, ..with_ess };
        assert!(no_ess.map_output_lost(0, 5, 0, 0));
        assert!(no_ess.enabled());
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let bad_rate = FaultPlan { task_failure_rate: 1.0, ..Default::default() };
        assert!(bad_rate.validate(4).is_err());
        let nan = FaultPlan { map_output_loss_rate: f64::NAN, ..Default::default() };
        assert!(nan.validate(4).is_err());
        let no_retries =
            FaultPlan { task_failure_rate: 0.1, max_task_retries: 0, ..Default::default() };
        assert!(no_retries.validate(4).is_err());
        let out_of_range = FaultPlan {
            crashes: vec![ExecutorCrash { at: SimTime::ZERO, executor: 9 }],
            ..Default::default()
        };
        assert!(out_of_range.validate(4).is_err());
        let unordered = FaultPlan {
            crashes: vec![
                ExecutorCrash { at: SimTime::from_nanos(10), executor: 0 },
                ExecutorCrash { at: SimTime::from_nanos(5), executor: 1 },
            ],
            ..Default::default()
        };
        assert!(unordered.validate(4).is_err());
        let lonely = FaultPlan {
            crashes: vec![ExecutorCrash { at: SimTime::ZERO, executor: 0 }],
            ..Default::default()
        };
        assert!(lonely.validate(1).is_err());
        assert!(lonely.validate(2).is_ok());
    }

    #[test]
    fn recoverable_depth_scales_with_the_retry_budget() {
        let plan = FaultPlan { task_failure_rate: 0.1, max_task_retries: 2, ..Default::default() };
        assert_eq!(plan.max_recoverable_depth(), Some(DEPTH_PER_ATTEMPT * 3));
    }

    #[test]
    fn degradation_fields_enable_the_plan() {
        let straggle = FaultPlan { straggler_rate: 0.2, ..Default::default() };
        assert!(straggle.enabled());
        let corrupt = FaultPlan { spill_corruption_rate: 0.2, ..Default::default() };
        assert!(corrupt.enabled());
        let fetch = FaultPlan { fetch_failure_rate: 0.2, ..Default::default() };
        assert!(fetch.enabled());
    }

    #[test]
    fn degradation_coins_are_deterministic() {
        let plan = FaultPlan {
            seed: 13,
            straggler_rate: 0.5,
            spill_corruption_rate: 0.5,
            fetch_failure_rate: 0.5,
            ..Default::default()
        };
        assert_eq!(plan.task_straggles(1, 2, 3), plan.task_straggles(1, 2, 3));
        assert_eq!(plan.spill_corrupted(4, 5, 0), plan.spill_corrupted(4, 5, 0));
        assert_eq!(plan.corruption_bit(4, 5, 0), plan.corruption_bit(4, 5, 0));
        assert!(plan.corruption_bit(4, 5, 0) < 64);
        assert_eq!(
            plan.fetch_attempt_fails(0, 7, 0, 2, 1),
            plan.fetch_attempt_fails(0, 7, 0, 2, 1)
        );
        // Coordinates matter: at rate 0.5 some of 64 neighbours must differ.
        let flips: Vec<bool> = (0..64).map(|p| plan.task_straggles(0, 0, p)).collect();
        assert!(flips.iter().any(|&f| f) && flips.iter().any(|&f| !f));
        let flips: Vec<bool> = (0..64).map(|s| plan.spill_corrupted(0, 0, s)).collect();
        assert!(flips.iter().any(|&f| f) && flips.iter().any(|&f| !f));
    }

    #[test]
    fn fetch_backoff_doubles_and_caps() {
        let plan = FaultPlan {
            fetch_backoff_base: SimDuration::from_millis(10),
            fetch_backoff_cap: SimDuration::from_millis(50),
            ..Default::default()
        };
        assert_eq!(plan.fetch_backoff(0), SimDuration::from_millis(10));
        assert_eq!(plan.fetch_backoff(1), SimDuration::from_millis(20));
        assert_eq!(plan.fetch_backoff(2), SimDuration::from_millis(40));
        assert_eq!(plan.fetch_backoff(3), SimDuration::from_millis(50));
        assert_eq!(plan.fetch_backoff(63), SimDuration::from_millis(50));
        assert_eq!(plan.fetch_backoff(64), SimDuration::from_millis(50));
    }

    #[test]
    fn validation_rejects_bad_degradation_plans() {
        let bad = FaultPlan { straggler_rate: 1.0, ..Default::default() };
        assert!(bad.validate(4).is_err());
        let bad = FaultPlan { straggler_rate: 0.1, straggler_slowdown: 0.5, ..Default::default() };
        assert!(bad.validate(4).is_err());
        let bad = FaultPlan { straggler_slowdown: f64::INFINITY, ..Default::default() };
        assert!(bad.validate(4).is_err());
        let bad = FaultPlan { spill_corruption_rate: 1.0, ..Default::default() };
        assert!(bad.validate(4).is_err());
        let bad = FaultPlan { fetch_failure_rate: f64::NAN, ..Default::default() };
        assert!(bad.validate(4).is_err());
        let bad = FaultPlan { fetch_failure_rate: 0.1, max_fetch_retries: 0, ..Default::default() };
        assert!(bad.validate(4).is_err());
        let bad = FaultPlan {
            fetch_failure_rate: 0.1,
            fetch_backoff_base: SimDuration::ZERO,
            ..Default::default()
        };
        assert!(bad.validate(4).is_err());
        let bad = FaultPlan {
            fetch_failure_rate: 0.1,
            fetch_backoff_base: SimDuration::from_millis(10),
            fetch_backoff_cap: SimDuration::from_millis(5),
            ..Default::default()
        };
        assert!(bad.validate(4).is_err());
        // A cap below base is fine while fetch failures are off.
        let ok = FaultPlan {
            fetch_backoff_base: SimDuration::from_millis(10),
            fetch_backoff_cap: SimDuration::from_millis(5),
            ..Default::default()
        };
        assert!(ok.validate(4).is_ok());
        let ok = FaultPlan {
            straggler_rate: 0.3,
            straggler_slowdown: 6.0,
            spill_corruption_rate: 0.2,
            fetch_failure_rate: 0.2,
            ..Default::default()
        };
        assert!(ok.validate(4).is_ok());
    }
}
