//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes every failure an application run will suffer as
//! a pure function of a seed, simulated-clock time and task coordinates —
//! never the host clock or OS randomness, so a faulty run replays
//! bit-identically across processes and worker-thread counts. Three failure
//! classes are injected (see DESIGN.md "Failure model"):
//!
//! - **Transient task failures**: each task attempt flips a seeded coin
//!   keyed by `(job, stage, partition, attempt)`; failed attempts are
//!   retried up to [`FaultPlan::max_task_retries`] times and their wasted
//!   time is charged to the slot and attributed to recovery metrics.
//! - **Executor crashes**: at the listed simulated times, an executor loses
//!   its memory and disk stores (and, without an external shuffle service,
//!   its shuffle outputs) at the next task-commit boundary; in-flight tasks
//!   placed on it are rescheduled onto survivors.
//! - **Map-output loss**: with `external_shuffle_service` disabled, a
//!   seeded coin keyed by `(job, shuffle, map task)` drops map outputs at
//!   job start; consumers recover them through lineage, Spark-style.
//!
//! The default plan is fully disabled and adds zero cost: the engine takes
//! no fault path at all when [`FaultPlan::enabled`] is false.

use blaze_common::error::{BlazeError, Result};
use blaze_common::rng::coord_coin;
use blaze_common::SimTime;

/// Distinct coin streams, so the same coordinates never reuse a draw
/// across failure classes.
const STREAM_TASK: u64 = 1;
const STREAM_MAP_OUTPUT: u64 = 2;

/// Heuristic uncached-lineage depth a single retry budget can be expected
/// to replay: each retry re-executes the whole uncached chain inline, so
/// deeper chains both lengthen attempts and widen the transient-failure
/// exposure window. The BA301 preflight rule rejects plans whose uncached
/// depth exceeds `DEPTH_PER_ATTEMPT * max_attempts`.
pub const DEPTH_PER_ATTEMPT: usize = 32;

/// Why an injected task attempt was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultCause {
    /// A transient failure drawn from [`FaultPlan::task_failure_rate`].
    Transient,
    /// The attempt was in flight on an executor that crashed.
    ExecutorLost,
}

/// One scheduled executor crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorCrash {
    /// Simulated time at which the crash fires. The executor dies at the
    /// first task-commit boundary whose frontier reaches this time (or at
    /// the next job boundary if the application is between jobs).
    pub at: SimTime,
    /// Index of the executor to kill. The machine is replaced immediately
    /// (same index, empty stores), as a cluster manager would.
    pub executor: usize,
}

/// A deterministic schedule of failures for one application run.
///
/// Carried on [`crate::config::ClusterConfig`]; the default plan injects
/// nothing. All draws are pure functions of `seed` and coordinates
/// (`blaze_common::rng::coord_coin`), so two runs of the same plan — at any
/// `worker_threads` — observe identical failures.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of every injection coin.
    pub seed: u64,
    /// Probability that any single task attempt fails transiently.
    /// Must be in `[0, 1)`: a rate of 1 could never succeed.
    pub task_failure_rate: f64,
    /// Retries allowed per task after its first attempt. A task whose
    /// `1 + max_task_retries` attempts all fail aborts the job.
    pub max_task_retries: u32,
    /// Scheduled executor crashes, ordered by time.
    pub crashes: Vec<ExecutorCrash>,
    /// Probability that a registered map output is lost at each job start.
    /// Only meaningful with `external_shuffle_service` off.
    pub map_output_loss_rate: f64,
    /// When true (the default, Spark's external shuffle service), shuffle
    /// outputs survive executor crashes and are never lost. When false, a
    /// crash drops the outputs the dead executor produced and
    /// `map_output_loss_rate` applies.
    pub external_shuffle_service: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            task_failure_rate: 0.0,
            max_task_retries: 3,
            crashes: Vec::new(),
            map_output_loss_rate: 0.0,
            external_shuffle_service: true,
        }
    }
}

impl FaultPlan {
    /// True when the plan can inject at least one failure. A disabled plan
    /// keeps the engine on its zero-cost fast path.
    pub fn enabled(&self) -> bool {
        self.task_failure_rate > 0.0
            || !self.crashes.is_empty()
            || (!self.external_shuffle_service && self.map_output_loss_rate > 0.0)
    }

    /// Total attempts a task may consume (first run + retries).
    pub fn max_attempts(&self) -> u32 {
        self.max_task_retries.saturating_add(1)
    }

    /// Seeded coin: does attempt `attempt` of task `(job, stage, part)`
    /// fail transiently?
    pub fn task_attempt_fails(&self, job: u32, stage: u32, part: u32, attempt: u32) -> bool {
        coord_coin(
            self.seed,
            &[STREAM_TASK, u64::from(job), u64::from(stage), u64::from(part), u64::from(attempt)],
            self.task_failure_rate,
        )
    }

    /// Seeded coin: is map output `map_part` of the shuffle feeding
    /// `(child, dep_idx)` lost at the start of `job`?
    pub fn map_output_lost(&self, job: u32, child: u32, dep_idx: usize, map_part: usize) -> bool {
        if self.external_shuffle_service {
            return false;
        }
        coord_coin(
            self.seed,
            &[STREAM_MAP_OUTPUT, u64::from(job), u64::from(child), dep_idx as u64, map_part as u64],
            self.map_output_loss_rate,
        )
    }

    /// The deepest uncached lineage chain the retry budget can be expected
    /// to replay, or `None` when the plan is disabled (no bound applies).
    /// Used by the BA301 preflight rule.
    pub fn max_recoverable_depth(&self) -> Option<usize> {
        if self.enabled() {
            Some(DEPTH_PER_ATTEMPT * self.max_attempts() as usize)
        } else {
            None
        }
    }

    /// Validates the plan against the cluster's executor count.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for out-of-range rates, a zero retry
    /// budget alongside a positive failure rate, unordered crash times, or
    /// a crash targeting a nonexistent executor (or a cluster too small to
    /// survive one).
    pub fn validate(&self, executors: usize) -> Result<()> {
        let rate = self.task_failure_rate;
        if !rate.is_finite() || !(0.0..1.0).contains(&rate) {
            return Err(BlazeError::Config(format!(
                "fault plan: task_failure_rate must be in [0, 1) (got {rate}); a rate of 1 \
                 could never succeed"
            )));
        }
        let rate = self.map_output_loss_rate;
        if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
            return Err(BlazeError::Config(format!(
                "fault plan: map_output_loss_rate must be in [0, 1] (got {rate})"
            )));
        }
        if self.task_failure_rate > 0.0 && self.max_task_retries == 0 {
            return Err(BlazeError::Config(
                "fault plan: max_task_retries must be >= 1 when task_failure_rate > 0".into(),
            ));
        }
        let mut prev = SimTime::ZERO;
        for crash in &self.crashes {
            if crash.at < prev {
                return Err(BlazeError::Config(format!(
                    "fault plan: crash times must be non-decreasing ({} after {prev})",
                    crash.at
                )));
            }
            prev = crash.at;
            if crash.executor >= executors {
                return Err(BlazeError::Config(format!(
                    "fault plan: crash targets executor {} but the cluster has {executors}",
                    crash.executor
                )));
            }
        }
        if !self.crashes.is_empty() && executors < 2 {
            return Err(BlazeError::Config(
                "fault plan: executor crashes need >= 2 executors so in-flight tasks can be \
                 rescheduled onto a survivor"
                    .into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_disabled_and_valid() {
        let plan = FaultPlan::default();
        assert!(!plan.enabled());
        plan.validate(1).unwrap();
        assert_eq!(plan.max_recoverable_depth(), None);
        assert!(!plan.task_attempt_fails(0, 0, 0, 0));
        assert!(!plan.map_output_lost(0, 0, 0, 0));
    }

    #[test]
    fn coins_are_deterministic_and_coordinate_keyed() {
        let plan = FaultPlan { seed: 42, task_failure_rate: 0.5, ..Default::default() };
        let a = plan.task_attempt_fails(1, 2, 3, 0);
        assert_eq!(a, plan.task_attempt_fails(1, 2, 3, 0));
        // Some nearby coordinate must differ (rate 0.5, 64 draws).
        let flips: Vec<bool> = (0..64).map(|p| plan.task_attempt_fails(1, 2, p, 0)).collect();
        assert!(flips.iter().any(|&f| f) && flips.iter().any(|&f| !f));
    }

    #[test]
    fn map_output_loss_requires_no_shuffle_service() {
        let with_ess = FaultPlan { seed: 7, map_output_loss_rate: 1.0, ..Default::default() };
        assert!(!with_ess.map_output_lost(0, 5, 0, 0));
        assert!(!with_ess.enabled());
        let no_ess = FaultPlan { external_shuffle_service: false, ..with_ess };
        assert!(no_ess.map_output_lost(0, 5, 0, 0));
        assert!(no_ess.enabled());
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let bad_rate = FaultPlan { task_failure_rate: 1.0, ..Default::default() };
        assert!(bad_rate.validate(4).is_err());
        let nan = FaultPlan { map_output_loss_rate: f64::NAN, ..Default::default() };
        assert!(nan.validate(4).is_err());
        let no_retries =
            FaultPlan { task_failure_rate: 0.1, max_task_retries: 0, ..Default::default() };
        assert!(no_retries.validate(4).is_err());
        let out_of_range = FaultPlan {
            crashes: vec![ExecutorCrash { at: SimTime::ZERO, executor: 9 }],
            ..Default::default()
        };
        assert!(out_of_range.validate(4).is_err());
        let unordered = FaultPlan {
            crashes: vec![
                ExecutorCrash { at: SimTime::from_nanos(10), executor: 0 },
                ExecutorCrash { at: SimTime::from_nanos(5), executor: 1 },
            ],
            ..Default::default()
        };
        assert!(unordered.validate(4).is_err());
        let lonely = FaultPlan {
            crashes: vec![ExecutorCrash { at: SimTime::ZERO, executor: 0 }],
            ..Default::default()
        };
        assert!(lonely.validate(1).is_err());
        assert!(lonely.validate(2).is_ok());
    }

    #[test]
    fn recoverable_depth_scales_with_the_retry_budget() {
        let plan = FaultPlan { task_failure_rate: 0.1, max_task_retries: 2, ..Default::default() };
        assert_eq!(plan.max_recoverable_depth(), Some(DEPTH_PER_ATTEMPT * 3));
    }
}
