//! Small statistics toolbox.
//!
//! Blaze fills in unobserved partition metrics "by applying a lightweight
//! linear regression model based on the existing metrics from previous
//! iterations" (paper §5.3). [`LinearRegression`] is that model; it is also
//! used to extrapolate partition sizes and compute times for iterations that
//! were not captured during the dependency-extraction phase.
//!
//! [`OnlineStats`] provides streaming mean/variance (Welford) used by the
//! engine's profilers (e.g. the runtime disk-throughput estimate, §5.3).

/// Streaming mean and variance (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Returns the number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Returns the running mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Returns the population variance, or 0.0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Returns the population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// An ordinary-least-squares fit of `y = intercept + slope * x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearRegression {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
}

impl LinearRegression {
    /// Fits a line through `(x, y)` samples.
    ///
    /// Returns `None` with fewer than two samples or when all `x` are equal
    /// (the slope is then undefined). With exactly constant `y`, the fit is a
    /// horizontal line with `r_squared = 1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use blaze_common::stats::LinearRegression;
    ///
    /// let fit = LinearRegression::fit(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]).unwrap();
    /// assert!((fit.slope - 2.0).abs() < 1e-12);
    /// assert!((fit.predict(10.0) - 21.0).abs() < 1e-12);
    /// ```
    pub fn fit(samples: &[(f64, f64)]) -> Option<Self> {
        let n = samples.len();
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let mean_x = samples.iter().map(|s| s.0).sum::<f64>() / nf;
        let mean_y = samples.iter().map(|s| s.1).sum::<f64>() / nf;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for &(x, y) in samples {
            sxx += (x - mean_x) * (x - mean_x);
            sxy += (x - mean_x) * (y - mean_y);
            syy += (y - mean_y) * (y - mean_y);
        }
        if sxx == 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let r_squared = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
        Some(Self { slope, intercept, r_squared })
    }

    /// Predicts `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Predicts `y` at `x`, clamped below at zero.
    ///
    /// Partition sizes and compute times are non-negative quantities; an
    /// extrapolated fit with negative values would poison downstream costs.
    pub fn predict_non_negative(&self, x: f64) -> f64 {
        self.predict(x).max(0.0)
    }
}

/// Extrapolates the next value of a sequence.
///
/// Uses a linear fit over the observed values indexed by position; falls back
/// to the last observation (or zero when empty) when a fit is unavailable.
/// This is the induction primitive used for future-iteration metrics.
pub fn extrapolate_next(values: &[f64]) -> f64 {
    extrapolate_at(values, values.len())
}

/// Extrapolates the value of a sequence at arbitrary index `idx`.
pub fn extrapolate_at(values: &[f64], idx: usize) -> f64 {
    match values.len() {
        0 => 0.0,
        1 => values[0],
        _ => {
            let samples: Vec<(f64, f64)> =
                values.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect();
            match LinearRegression::fit(&samples) {
                Some(fit) => fit.predict_non_negative(idx as f64),
                None => *values.last().expect("non-empty"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_mean_and_variance() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn online_stats_empty_is_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn regression_recovers_exact_line() {
        let samples: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let fit = LinearRegression::fit(&samples).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(20.0) - 43.0).abs() < 1e-12);
    }

    #[test]
    fn regression_needs_two_distinct_x() {
        assert!(LinearRegression::fit(&[]).is_none());
        assert!(LinearRegression::fit(&[(1.0, 2.0)]).is_none());
        assert!(LinearRegression::fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn regression_constant_y_is_perfect_horizontal_fit() {
        let fit = LinearRegression::fit(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]).unwrap();
        assert!((fit.slope).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn predict_non_negative_clamps() {
        let fit = LinearRegression::fit(&[(0.0, 1.0), (1.0, 0.0)]).unwrap();
        assert_eq!(fit.predict_non_negative(10.0), 0.0);
    }

    #[test]
    fn extrapolation_follows_trend() {
        // Sizes growing by 10 per iteration, like intermediate data growth.
        let v = [100.0, 110.0, 120.0, 130.0];
        assert!((extrapolate_next(&v) - 140.0).abs() < 1e-9);
        assert!((extrapolate_at(&v, 6) - 160.0).abs() < 1e-9);
    }

    #[test]
    fn extrapolation_degenerate_inputs() {
        assert_eq!(extrapolate_next(&[]), 0.0);
        assert_eq!(extrapolate_next(&[42.0]), 42.0);
    }
}
