//! A fixed-state, fast hasher for deterministic data placement.
//!
//! Shuffle bucketing, map-side combining and every internal hash map in the
//! dataflow operators must behave identically across runs for experiments to
//! be reproducible. `std::collections::HashMap`'s default `RandomState` is
//! seeded per process, so we use a Fowler–Noll–Vo-style multiply-xor hasher
//! (the FxHash construction used by rustc) with a fixed initial state.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A deterministic, fast, non-cryptographic hasher.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with deterministic hashing.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` with deterministic hashing.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes one value with the deterministic hasher.
pub fn hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one(&"hello"), hash_one(&"hello"));
    }

    #[test]
    fn different_values_usually_differ() {
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        assert_ne!(hash_one(&"a"), hash_one(&"b"));
    }

    #[test]
    fn map_iteration_order_is_stable_for_same_insertions() {
        let build = || {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for i in 0..100 {
                m.insert(i * 7 % 101, i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn spread_over_buckets_is_reasonable() {
        // 10k sequential keys into 16 buckets should not collapse into few.
        let mut counts = [0usize; 16];
        for i in 0..10_000u64 {
            counts[(hash_one(&i) % 16) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(min > 300, "bucket underfull: {counts:?}");
        assert!(max < 1300, "bucket overfull: {counts:?}");
    }
}
