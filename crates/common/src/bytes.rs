//! Byte-size accounting.
//!
//! Memory- and disk-store capacities, partition sizes and eviction volumes
//! are all tracked as [`ByteSize`] values. The type is a thin wrapper over
//! `u64` with saturating arithmetic (capacity accounting must never panic on
//! transient underflow) and a human-readable display.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A number of bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from a raw byte count.
    pub const fn from_bytes(b: u64) -> Self {
        Self(b)
    }

    /// Creates a size from binary kilobytes (KiB).
    pub const fn from_kib(k: u64) -> Self {
        Self(k * 1024)
    }

    /// Creates a size from binary megabytes (MiB).
    pub const fn from_mib(m: u64) -> Self {
        Self(m * 1024 * 1024)
    }

    /// Creates a size from binary gigabytes (GiB).
    pub const fn from_gib(g: u64) -> Self {
        Self(g * 1024 * 1024 * 1024)
    }

    /// Returns the raw byte count.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Returns the size in MiB as a float (for reporting).
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Returns true if this size is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Self) -> Self {
        Self(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a non-negative float factor, saturating at zero.
    pub fn scale(self, factor: f64) -> Self {
        if !factor.is_finite() || factor <= 0.0 {
            return Self::ZERO;
        }
        Self((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: Self) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0.saturating_mul(rhs))
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: f64 = 1024.0;
        let b = self.0 as f64;
        if b >= KIB * KIB * KIB {
            write!(f, "{:.2}GiB", b / (KIB * KIB * KIB))
        } else if b >= KIB * KIB {
            write!(f, "{:.2}MiB", b / (KIB * KIB))
        } else if b >= KIB {
            write!(f, "{:.2}KiB", b / KIB)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(ByteSize::from_kib(1).as_bytes(), 1024);
        assert_eq!(ByteSize::from_mib(1).as_bytes(), 1024 * 1024);
        assert_eq!(ByteSize::from_gib(1).as_bytes(), 1 << 30);
    }

    #[test]
    fn arithmetic_saturates() {
        let a = ByteSize::from_bytes(10);
        let b = ByteSize::from_bytes(25);
        assert_eq!(a - b, ByteSize::ZERO);
        assert_eq!(b - a, ByteSize::from_bytes(15));
        assert_eq!(ByteSize::from_bytes(u64::MAX) + b, ByteSize::from_bytes(u64::MAX));
    }

    #[test]
    fn scale_handles_degenerate_factors() {
        let a = ByteSize::from_mib(10);
        assert_eq!(a.scale(0.5), ByteSize::from_mib(5));
        assert_eq!(a.scale(-1.0), ByteSize::ZERO);
        assert_eq!(a.scale(f64::NAN), ByteSize::ZERO);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(ByteSize::from_bytes(512).to_string(), "512B");
        assert_eq!(ByteSize::from_kib(2).to_string(), "2.00KiB");
        assert_eq!(ByteSize::from_mib(3).to_string(), "3.00MiB");
        assert_eq!(ByteSize::from_gib(4).to_string(), "4.00GiB");
    }

    #[test]
    fn sums() {
        let total: ByteSize = (1..=3).map(ByteSize::from_kib).sum();
        assert_eq!(total, ByteSize::from_kib(6));
    }
}
