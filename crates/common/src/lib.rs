//! Foundational types shared by every crate in the Blaze reproduction.
//!
//! This crate deliberately has no dependency on the dataflow or engine layers
//! so that identifiers, simulated time, byte accounting, size estimation and
//! the small statistics toolbox can be used everywhere without cycles.
//!
//! # Overview
//!
//! - [`ids`] — strongly typed identifiers for RDDs, partitions, blocks, jobs,
//!   stages, tasks and executors.
//! - [`time`] — [`time::SimTime`] / [`time::SimDuration`],
//!   the simulated clock used by the execution engine instead of wall time.
//! - [`bytes`] — [`bytes::ByteSize`] with human-readable display.
//! - [`sizeof`] — the [`sizeof::SizeOf`] trait used to estimate the
//!   in-memory footprint of materialized partitions.
//! - [`stats`] — online statistics and the least-squares linear regression
//!   used by Blaze's inductive metric prediction (paper §5.3).
//! - [`rng`] — deterministic, seedable random-number helpers.
//! - [`error`] — the shared [`error::BlazeError`] type.

#![warn(missing_docs)]

pub mod bytes;
pub mod error;
pub mod fxhash;
pub mod ids;
pub mod rng;
pub mod sizeof;
pub mod stats;
pub mod time;

pub use bytes::ByteSize;
pub use error::{BlazeError, Result};
pub use ids::{BlockId, ExecutorId, JobId, RddId, StageId, TaskId};
pub use sizeof::SizeOf;
pub use time::{SimDuration, SimTime};
