//! In-memory size estimation for materialized partition data.
//!
//! The engine charges cached blocks against a bounded memory store, so every
//! element type stored in a dataset must report an estimate of its heap
//! footprint. This mirrors Spark's `SizeEstimator`. Estimates do not need to
//! be exact — they need to be *consistent*, so that relative partition sizes
//! (and therefore disk-cost rankings, Eq. 3 of the paper) are faithful.

use crate::bytes::ByteSize;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Types whose in-memory footprint can be estimated.
///
/// `deep_size` must include both the inline size of the value and any owned
/// heap allocations. Implementations for containers account for per-element
/// overheads where they matter (e.g. hash-map buckets).
pub trait SizeOf {
    /// Returns the estimated total footprint of `self` in bytes.
    fn deep_size(&self) -> usize;
}

macro_rules! impl_sizeof_prim {
    ($($t:ty),* $(,)?) => {
        $(impl SizeOf for $t {
            fn deep_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_sizeof_prim!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl SizeOf for &'static str {
    fn deep_size(&self) -> usize {
        // Borrowed static data occupies no owned heap; count the reference
        // plus the referenced bytes so relative sizes stay meaningful.
        std::mem::size_of::<&str>() + self.len()
    }
}

impl SizeOf for String {
    fn deep_size(&self) -> usize {
        std::mem::size_of::<String>() + self.capacity()
    }
}

impl<T: SizeOf> SizeOf for Option<T> {
    fn deep_size(&self) -> usize {
        std::mem::size_of::<Option<T>>()
            + match self {
                Some(v) => v.deep_size().saturating_sub(std::mem::size_of::<T>()),
                None => 0,
            }
    }
}

impl<T: SizeOf> SizeOf for Vec<T> {
    fn deep_size(&self) -> usize {
        let inline = std::mem::size_of::<Vec<T>>();
        let elems: usize = self.iter().map(SizeOf::deep_size).sum();
        // Unused capacity still occupies memory.
        let slack = (self.capacity() - self.len()) * std::mem::size_of::<T>();
        inline + elems + slack
    }
}

impl<T: SizeOf> SizeOf for Box<T> {
    fn deep_size(&self) -> usize {
        std::mem::size_of::<Box<T>>() + self.as_ref().deep_size()
    }
}

impl<T: SizeOf> SizeOf for Arc<T> {
    fn deep_size(&self) -> usize {
        // Shared ownership: attribute the full payload to each holder, which
        // is what a cache must assume when deciding whether it fits.
        std::mem::size_of::<Arc<T>>() + self.as_ref().deep_size()
    }
}

impl<K: SizeOf, V: SizeOf> SizeOf for HashMap<K, V> {
    fn deep_size(&self) -> usize {
        const BUCKET_OVERHEAD: usize = 16;
        std::mem::size_of::<HashMap<K, V>>()
            + self
                .iter()
                .map(|(k, v)| k.deep_size() + v.deep_size() + BUCKET_OVERHEAD)
                .sum::<usize>()
    }
}

impl<K: SizeOf, V: SizeOf> SizeOf for BTreeMap<K, V> {
    fn deep_size(&self) -> usize {
        const NODE_OVERHEAD: usize = 12;
        std::mem::size_of::<BTreeMap<K, V>>()
            + self.iter().map(|(k, v)| k.deep_size() + v.deep_size() + NODE_OVERHEAD).sum::<usize>()
    }
}

macro_rules! impl_sizeof_tuple {
    ($($name:ident),+) => {
        impl<$($name: SizeOf),+> SizeOf for ($($name,)+) {
            fn deep_size(&self) -> usize {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                0 $(+ $name.deep_size())+
            }
        }
    };
}

impl_sizeof_tuple!(A);
impl_sizeof_tuple!(A, B);
impl_sizeof_tuple!(A, B, C);
impl_sizeof_tuple!(A, B, C, D);
impl_sizeof_tuple!(A, B, C, D, E);
impl_sizeof_tuple!(A, B, C, D, E, F);

/// Estimates the footprint of a slice of elements as a [`ByteSize`].
///
/// This is the entry point the engine uses when a task materializes a
/// partition.
pub fn slice_size<T: SizeOf>(items: &[T]) -> ByteSize {
    ByteSize::from_bytes(items.iter().map(SizeOf::deep_size).sum::<usize>() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_report_inline_size() {
        assert_eq!(0u64.deep_size(), 8);
        assert_eq!(0u8.deep_size(), 1);
        assert_eq!(1.5f64.deep_size(), 8);
    }

    #[test]
    fn strings_include_heap() {
        let s = String::from("hello");
        assert!(s.deep_size() >= std::mem::size_of::<String>() + 5);
    }

    #[test]
    fn vec_includes_elements_and_slack() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.extend([1, 2, 3, 4]);
        let size = v.deep_size();
        // 4 elements + 12 slack slots of 8 bytes each + Vec header.
        assert_eq!(size, std::mem::size_of::<Vec<u64>>() + 16 * 8);
    }

    #[test]
    fn nested_vectors_are_deep() {
        let v = vec![vec![1u32; 10], vec![2u32; 10]];
        assert!(v.deep_size() >= 2 * 10 * 4);
    }

    #[test]
    fn tuples_sum_components() {
        let t = (1u64, String::from("ab"));
        assert!(t.deep_size() >= 8 + 2);
    }

    #[test]
    fn maps_account_per_entry_overhead() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        m.insert(3u64, 4u64);
        assert!(m.deep_size() >= 2 * (8 + 8 + 16));
    }

    #[test]
    fn slice_size_matches_sum() {
        let data = [1u32, 2, 3];
        assert_eq!(slice_size(&data), ByteSize::from_bytes(12));
    }

    #[test]
    fn bigger_collections_report_bigger_sizes() {
        let small = vec![0u64; 10];
        let large = vec![0u64; 1000];
        assert!(large.deep_size() > small.deep_size() * 50);
    }
}
