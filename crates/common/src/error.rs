//! Shared error type.
//!
//! The public APIs of the dataflow and engine crates are fallible: plan
//! construction errors (unknown RDD, type mismatch across the type-erased
//! plan boundary), execution errors and solver failures all surface as
//! [`BlazeError`] rather than panics, following the fallible-by-default
//! convention of production Rust systems code.

use std::fmt;

/// The error type shared across the Blaze reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlazeError {
    /// A referenced dataset does not exist in the lineage plan.
    UnknownRdd(String),
    /// The dynamic type of a materialized partition did not match the
    /// statically expected element type.
    TypeMismatch {
        /// Which dataset/partition the mismatch was observed on.
        context: String,
    },
    /// A plan was structurally invalid (e.g. a cycle, or a shuffle read with
    /// no registered map output).
    InvalidPlan(String),
    /// The execution engine entered an inconsistent state.
    Execution(String),
    /// A configuration value was out of range or inconsistent.
    Config(String),
    /// The LP/ILP solver could not produce a solution.
    Solver(String),
    /// The preflight auditor found an error-severity diagnostic (see
    /// `blaze-audit`); the job was aborted before execution.
    Audit {
        /// The stable diagnostic code (e.g. `BA002`).
        code: String,
        /// The diagnostic message.
        message: String,
    },
}

impl fmt::Display for BlazeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlazeError::UnknownRdd(what) => write!(f, "unknown RDD: {what}"),
            BlazeError::TypeMismatch { context } => {
                write!(f, "partition type mismatch at {context}")
            }
            BlazeError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            BlazeError::Execution(msg) => write!(f, "execution error: {msg}"),
            BlazeError::Config(msg) => write!(f, "configuration error: {msg}"),
            BlazeError::Solver(msg) => write!(f, "solver error: {msg}"),
            BlazeError::Audit { code, message } => {
                write!(f, "audit failure [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for BlazeError {}

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, BlazeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        let e = BlazeError::UnknownRdd("rdd-9".into());
        assert_eq!(e.to_string(), "unknown RDD: rdd-9");
        let e = BlazeError::TypeMismatch { context: "rdd-3[1]".into() };
        assert!(e.to_string().contains("rdd-3[1]"));
        let e = BlazeError::Solver("infeasible".into());
        assert!(e.to_string().contains("infeasible"));
        let e = BlazeError::Audit { code: "BA002".into(), message: "dangling parent".into() };
        assert!(e.to_string().contains("BA002") && e.to_string().contains("dangling parent"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&BlazeError::Execution("x".into()));
    }
}
