//! Deterministic random-number helpers.
//!
//! All synthetic data generation in the reproduction is seeded, so two runs
//! of any experiment produce identical datasets, identical partition sizes
//! and therefore identical simulated timelines.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a `u64` seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// Used to give each partition generator its own independent stream while
/// keeping the whole dataset a pure function of the top-level seed
/// (SplitMix64 finalizer; good avalanche behaviour for sequential indices).
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a coordinate tuple into a uniform `u64` by folding each
/// coordinate through the SplitMix64 finalizer.
///
/// Used wherever a decision must be a pure function of *where it happens*
/// (e.g. fault injection keyed by `(job, stage, task, attempt)`): the same
/// seed and coordinates always produce the same value, independent of
/// evaluation order, thread count or host state.
pub fn hash_coords(seed: u64, coords: &[u64]) -> u64 {
    let mut h = derive_seed(seed, 0);
    for (i, &c) in coords.iter().enumerate() {
        h = derive_seed(h ^ c, i as u64 + 1);
    }
    h
}

/// Deterministic Bernoulli draw: true with probability `rate` as a pure
/// function of the seed and coordinates.
///
/// The top 53 bits of the coordinate hash are mapped to `[0, 1)` with full
/// double precision; `rate <= 0` never fires and `rate >= 1` always fires.
pub fn coord_coin(seed: u64, coords: &[u64], rate: f64) -> bool {
    if rate.is_nan() || rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let u = (hash_coords(seed, coords) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    u < rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a: Vec<u64> = seeded(7).sample_iter(rand::distributions::Standard).take(5).collect();
        let b: Vec<u64> = seeded(7).sample_iter(rand::distributions::Standard).take(5).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = seeded(1).gen();
        let b: u64 = seeded(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn derived_seeds_are_distinct_per_stream() {
        let s0 = derive_seed(42, 0);
        let s1 = derive_seed(42, 1);
        let s2 = derive_seed(42, 2);
        assert_ne!(s0, s1);
        assert_ne!(s1, s2);
        assert_ne!(s0, s2);
        // And stable.
        assert_eq!(derive_seed(42, 1), s1);
    }

    #[test]
    fn derived_seeds_depend_on_parent() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn coord_hash_is_stable_and_coordinate_sensitive() {
        assert_eq!(hash_coords(7, &[1, 2, 3]), hash_coords(7, &[1, 2, 3]));
        assert_ne!(hash_coords(7, &[1, 2, 3]), hash_coords(7, &[1, 2, 4]));
        assert_ne!(hash_coords(7, &[1, 2, 3]), hash_coords(8, &[1, 2, 3]));
        // Order matters: (1, 2) and (2, 1) are different coordinates.
        assert_ne!(hash_coords(7, &[1, 2]), hash_coords(7, &[2, 1]));
    }

    #[test]
    fn coord_coin_respects_degenerate_rates() {
        assert!(!coord_coin(1, &[0], 0.0));
        assert!(!coord_coin(1, &[0], -1.0));
        assert!(!coord_coin(1, &[0], f64::NAN));
        assert!(coord_coin(1, &[0], 1.0));
        assert!(coord_coin(1, &[0], 2.0));
    }

    #[test]
    fn coord_coin_hits_near_the_requested_rate() {
        let n = 10_000u64;
        let hits = (0..n).filter(|&i| coord_coin(99, &[i], 0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "empirical rate {frac}");
    }
}
