//! Deterministic random-number helpers.
//!
//! All synthetic data generation in the reproduction is seeded, so two runs
//! of any experiment produce identical datasets, identical partition sizes
//! and therefore identical simulated timelines.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a `u64` seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// Used to give each partition generator its own independent stream while
/// keeping the whole dataset a pure function of the top-level seed
/// (SplitMix64 finalizer; good avalanche behaviour for sequential indices).
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a: Vec<u64> = seeded(7).sample_iter(rand::distributions::Standard).take(5).collect();
        let b: Vec<u64> = seeded(7).sample_iter(rand::distributions::Standard).take(5).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = seeded(1).gen();
        let b: u64 = seeded(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn derived_seeds_are_distinct_per_stream() {
        let s0 = derive_seed(42, 0);
        let s1 = derive_seed(42, 1);
        let s2 = derive_seed(42, 2);
        assert_ne!(s0, s1);
        assert_ne!(s1, s2);
        assert_ne!(s0, s2);
        // And stable.
        assert_eq!(derive_seed(42, 1), s1);
    }

    #[test]
    fn derived_seeds_depend_on_parent() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }
}
