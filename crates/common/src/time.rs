//! Simulated time.
//!
//! The execution engine never consults the wall clock on the measured path.
//! Every cost (compute, serialization, disk, network) is charged in
//! [`SimDuration`] units derived from deterministic cost models, and task
//! timelines are composed on a per-executor-slot [`SimTime`] axis. This makes
//! every experiment bit-for-bit reproducible.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time with nanosecond resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Negative or non-finite inputs saturate to zero; this keeps cost-model
    /// arithmetic total without panicking on degenerate model parameters.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Self::ZERO;
        }
        Self((s * 1e9).round() as u64)
    }

    /// Returns the duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns true if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Self) -> Self {
        Self(self.0.saturating_sub(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> Self {
        Self::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> Self {
        Self(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A point on the simulated time axis (nanoseconds since application start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the simulated clock.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point from nanoseconds since the origin.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Returns nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns seconds since the origin as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the later of two time points.
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(4).as_nanos(), 4_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn degenerate_float_inputs_saturate_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!((a + b).as_millis_f64(), 14.0);
        assert_eq!((a - b).as_millis_f64(), 6.0);
        assert_eq!((b - a), SimDuration::ZERO); // saturating
        assert!(b < a);
        assert_eq!(a * 3, SimDuration::from_millis(30));
        assert_eq!(a / 2, SimDuration::from_millis(5));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn time_advances_and_measures() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(3);
        assert_eq!(t1.since(t0), SimDuration::from_secs(3));
        assert_eq!(t0.since(t1), SimDuration::ZERO);
        assert_eq!(t1.max(t0), t1);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }
}
