//! Strongly typed identifiers for the entities of the dataflow model.
//!
//! Using newtypes instead of bare integers prevents the classic bug class of
//! passing a stage id where a job id is expected, and gives every id a
//! uniform, greppable `Display` form (`rdd-12`, `job-3`, ...), mirroring the
//! `Rx`/`Sx`/`Jobx` labels the paper uses in its lineage figures.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw numeric value of this identifier.
            pub fn raw(self) -> u32 {
                self.0
            }

            /// Returns the identifier following this one.
            pub fn next(self) -> Self {
                Self(self.0 + 1)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "-{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

define_id!(
    /// Identifier of a logical dataset (RDD) in the lineage plan.
    RddId,
    "rdd"
);
define_id!(
    /// Identifier of a job (one action trigger; one iteration in iterative workloads).
    JobId,
    "job"
);
define_id!(
    /// Identifier of one application admitted to a multi-app session.
    ///
    /// Jobs are numbered per application (each driver owns its own counter,
    /// like a `SparkContext`), so a bare [`JobId`] collides as soon as two
    /// applications run concurrently; per-job accounting is keyed by
    /// `(AppId, JobId)`.
    AppId,
    "app"
);
define_id!(
    /// Identifier of a stage (a shuffle-free pipeline of operators within a job).
    StageId,
    "stage"
);
define_id!(
    /// Identifier of a task (the computation of one partition within a stage).
    TaskId,
    "task"
);
define_id!(
    /// Identifier of an executor in the simulated cluster.
    ExecutorId,
    "exec"
);

/// Identifier of one materialized data partition: an (RDD, partition index) pair.
///
/// This is the granularity at which Blaze makes caching decisions (paper §3.1
/// argues dataset-granularity caching is too coarse).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId {
    /// The logical dataset this partition belongs to.
    pub rdd: RddId,
    /// The partition index within the dataset.
    pub partition: u32,
}

impl BlockId {
    /// Creates a block id from an RDD id and a partition index.
    pub fn new(rdd: RddId, partition: u32) -> Self {
        Self { rdd, partition }
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.rdd, self.partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_forms_are_stable() {
        assert_eq!(RddId(12).to_string(), "rdd-12");
        assert_eq!(JobId(3).to_string(), "job-3");
        assert_eq!(AppId(2).to_string(), "app-2");
        assert_eq!(StageId(0).to_string(), "stage-0");
        assert_eq!(TaskId(7).to_string(), "task-7");
        assert_eq!(ExecutorId(1).to_string(), "exec-1");
        assert_eq!(BlockId::new(RddId(5), 2).to_string(), "rdd-5[2]");
    }

    #[test]
    fn next_increments() {
        assert_eq!(RddId(0).next(), RddId(1));
        assert_eq!(JobId(41).next().raw(), 42);
    }

    #[test]
    fn block_ids_hash_and_order() {
        let a = BlockId::new(RddId(1), 0);
        let b = BlockId::new(RddId(1), 1);
        let c = BlockId::new(RddId(2), 0);
        assert!(a < b && b < c);
        let set: HashSet<_> = [a, b, c, a].into_iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn from_u32_round_trips() {
        let id: RddId = 9u32.into();
        assert_eq!(id.raw(), 9);
    }
}
