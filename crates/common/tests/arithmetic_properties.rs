//! Property-based tests for the arithmetic of the foundational types:
//! capacity accounting and time composition must never panic, never go
//! negative, and obey the usual algebraic laws.

use blaze_common::{ByteSize, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bytesize_addition_is_commutative_and_monotone(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        let (x, y) = (ByteSize::from_bytes(a), ByteSize::from_bytes(b));
        prop_assert_eq!(x + y, y + x);
        prop_assert!(x + y >= x);
        prop_assert!(x + y >= y);
    }

    #[test]
    fn bytesize_subtraction_saturates(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        let (x, y) = (ByteSize::from_bytes(a), ByteSize::from_bytes(b));
        let d = x - y;
        prop_assert!(d <= x);
        if a >= b {
            prop_assert_eq!(d.as_bytes(), a - b);
        } else {
            prop_assert_eq!(d, ByteSize::ZERO);
        }
        // add-then-subtract round-trips when no saturation happened.
        prop_assert_eq!((x + y) - y, x);
    }

    #[test]
    fn bytesize_scale_is_monotone_in_factor(a in 1u64..1 << 30, f1 in 0.0f64..4.0, f2 in 0.0f64..4.0) {
        let x = ByteSize::from_bytes(a);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(x.scale(lo) <= x.scale(hi));
    }

    #[test]
    fn duration_sum_matches_fold(parts in prop::collection::vec(0u64..1 << 30, 0..12)) {
        let total: SimDuration = parts.iter().map(|&n| SimDuration::from_nanos(n)).sum();
        let folded = parts
            .iter()
            .fold(SimDuration::ZERO, |acc, &n| acc + SimDuration::from_nanos(n));
        prop_assert_eq!(total, folded);
        prop_assert_eq!(total.as_nanos(), parts.iter().sum::<u64>());
    }

    #[test]
    fn time_advance_then_since_round_trips(start in 0u64..1 << 40, d in 0u64..1 << 40) {
        let t0 = SimTime::from_nanos(start);
        let dur = SimDuration::from_nanos(d);
        let t1 = t0 + dur;
        prop_assert_eq!(t1.since(t0), dur);
        prop_assert_eq!(t0.since(t1), SimDuration::ZERO);
        prop_assert_eq!(t1.max(t0), t1);
    }

    #[test]
    fn duration_display_never_panics(n in 0u64..u64::MAX / 2) {
        let _ = SimDuration::from_nanos(n).to_string();
        let _ = ByteSize::from_bytes(n).to_string();
        let _ = SimTime::from_nanos(n).to_string();
    }

    #[test]
    fn seconds_round_trip_within_precision(s in 0.0f64..1e6) {
        let d = SimDuration::from_secs_f64(s);
        prop_assert!((d.as_secs_f64() - s).abs() < 1e-9 * s.max(1.0));
    }
}
