//! Key-value operations: shuffles, joins and co-grouping.
//!
//! These are the operators that create stage boundaries (paper §2.2): the
//! map side buckets records by key hash, and reduce tasks aggregate the
//! buckets addressed to them. Joins of co-partitioned datasets are planned
//! as narrow `zip_partitions`, like Spark's co-partitioned joins, so
//! `partition_by` + iterate produces one shuffle per iteration rather than
//! two.

use crate::block::{Block, Data};
use crate::dataset::Dataset;
use crate::partitioner::HashPartitioner;
use crate::plan::{Compute, CostSpec, Dep, MapSideFn, RddNode, ShuffleAggFn};
use blaze_common::error::Result;
use blaze_common::fxhash::FxHashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Result of [`Dataset::cogroup`]: for every key, the values seen on the
/// left and on the right side.
pub type CoGrouped<K, V, W> = Dataset<(K, (Vec<V>, Vec<W>))>;

impl<K, V> Dataset<(K, V)>
where
    K: Data + Hash + Eq,
    V: Data,
{
    fn shuffle_node<U: Data>(
        &self,
        name: &str,
        num_partitions: usize,
        cost: CostSpec,
        map_side: MapSideFn,
        agg: ShuffleAggFn,
    ) -> Dataset<U> {
        let parent = self.id();
        let name = name.to_string();
        let id = self.context().add_node(|id| RddNode {
            id,
            name,
            num_partitions,
            deps: vec![Dep::Shuffle { parent, map_side }],
            compute: Compute::ShuffleAgg(agg),
            cost,
            ser_factor: 1.0,
            partitioner: Some(HashPartitioner::new(num_partitions)),
            cache_annotated: false,
            unpersist_requested: false,
        });
        Dataset::new(self.context().clone(), id, num_partitions)
    }

    /// Splits a partition of pairs into `n` buckets by key hash.
    fn bucket_pairs(pairs: &[(K, V)], n: usize) -> Vec<Vec<(K, V)>> {
        let partitioner = HashPartitioner::new(n);
        let mut buckets: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
        for kv in pairs {
            buckets[partitioner.partition(&kv.0)].push(kv.clone());
        }
        buckets
    }

    /// Merges values per key with `f`, shuffling into `num_partitions`
    /// hash partitions. Performs map-side combining like Spark.
    ///
    /// # Examples
    ///
    /// ```
    /// use blaze_dataflow::{Context, runner::LocalRunner};
    ///
    /// let ctx = Context::new(LocalRunner::new());
    /// let pairs = ctx.parallelize(vec![("a", 1u32), ("b", 2), ("a", 3)], 2);
    /// let mut sums = pairs.reduce_by_key(2, |x, y| x + y).collect().unwrap();
    /// sums.sort();
    /// assert_eq!(sums, vec![("a", 4), ("b", 2)]);
    /// ```
    pub fn reduce_by_key(
        &self,
        num_partitions: usize,
        f: impl Fn(&V, &V) -> V + Send + Sync + 'static,
    ) -> Dataset<(K, V)> {
        let f = Arc::new(f);
        let map_f = Arc::clone(&f);
        let map_side: MapSideFn = Arc::new(move |block, n| {
            let pairs = block.as_slice::<(K, V)>("reduce_by_key map-side")?;
            // Map-side combine: one value per key per map task.
            let mut combined: FxHashMap<K, V> = FxHashMap::default();
            for (k, v) in pairs {
                match combined.get_mut(k) {
                    Some(acc) => *acc = map_f(acc, v),
                    None => {
                        combined.insert(k.clone(), v.clone());
                    }
                }
            }
            let merged: Vec<(K, V)> = combined.into_iter().collect();
            Ok(Self::bucket_pairs(&merged, n).into_iter().map(Block::from_vec).collect())
        });
        let agg_f = Arc::clone(&f);
        let agg: ShuffleAggFn = Arc::new(move |p, per_dep| {
            let ctx = format!("reduce_by_key agg@{p}");
            let mut merged: FxHashMap<K, V> = FxHashMap::default();
            for block in &per_dep[0] {
                for (k, v) in block.as_slice::<(K, V)>(&ctx)? {
                    match merged.get_mut(k) {
                        Some(acc) => *acc = agg_f(acc, v),
                        None => {
                            merged.insert(k.clone(), v.clone());
                        }
                    }
                }
            }
            Ok(Block::from_vec(merged.into_iter().collect::<Vec<(K, V)>>()))
        });
        self.shuffle_node("reduce_by_key", num_partitions, CostSpec::SHUFFLE_AGG, map_side, agg)
    }

    /// The general combiner (Spark's `combineByKey`): creates a per-key
    /// accumulator of type `C` with `create`, folds values in map-side with
    /// `merge_value`, and merges accumulators across map tasks with
    /// `merge_combiners`. `reduce_by_key` and `group_by_key` are special
    /// cases of this operator.
    pub fn combine_by_key<C: Data>(
        &self,
        num_partitions: usize,
        create: impl Fn(&V) -> C + Send + Sync + 'static,
        merge_value: impl Fn(C, &V) -> C + Send + Sync + 'static,
        merge_combiners: impl Fn(C, C) -> C + Send + Sync + 'static,
    ) -> Dataset<(K, C)> {
        let create = Arc::new(create);
        let merge_value = Arc::new(merge_value);
        let merge_combiners = Arc::new(merge_combiners);
        let (mk, mv) = (Arc::clone(&create), Arc::clone(&merge_value));
        let map_side: MapSideFn = Arc::new(move |block, n| {
            let pairs = block.as_slice::<(K, V)>("combine_by_key map-side")?;
            let mut combined: FxHashMap<K, C> = FxHashMap::default();
            for (k, v) in pairs {
                match combined.remove(k) {
                    Some(acc) => {
                        combined.insert(k.clone(), mv(acc, v));
                    }
                    None => {
                        combined.insert(k.clone(), mk(v));
                    }
                }
            }
            let merged: Vec<(K, C)> = combined.into_iter().collect();
            let partitioner = HashPartitioner::new(n);
            let mut buckets: Vec<Vec<(K, C)>> = (0..n).map(|_| Vec::new()).collect();
            for kc in merged {
                let b = partitioner.partition(&kc.0);
                buckets[b].push(kc);
            }
            Ok(buckets.into_iter().map(Block::from_vec).collect())
        });
        let mc = Arc::clone(&merge_combiners);
        let agg: ShuffleAggFn = Arc::new(move |p, per_dep| {
            let ctx = format!("combine_by_key agg@{p}");
            let mut merged: FxHashMap<K, C> = FxHashMap::default();
            for block in &per_dep[0] {
                for (k, c) in block.as_slice::<(K, C)>(&ctx)? {
                    match merged.remove(k) {
                        Some(acc) => {
                            merged.insert(k.clone(), mc(acc, c.clone()));
                        }
                        None => {
                            merged.insert(k.clone(), c.clone());
                        }
                    }
                }
            }
            Ok(Block::from_vec(merged.into_iter().collect::<Vec<(K, C)>>()))
        });
        self.shuffle_node("combine_by_key", num_partitions, CostSpec::SHUFFLE_AGG, map_side, agg)
    }

    /// Folds values per key starting from `zero` (Spark's `foldByKey`).
    pub fn fold_by_key(
        &self,
        num_partitions: usize,
        zero: V,
        f: impl Fn(&V, &V) -> V + Send + Sync + 'static,
    ) -> Dataset<(K, V)> {
        let f = Arc::new(f);
        let (fa, fb, z) = (Arc::clone(&f), Arc::clone(&f), zero);
        self.combine_by_key(
            num_partitions,
            move |v| fa(&z, v),
            move |acc, v| fb(&acc, v),
            move |a, b| f(&a, &b),
        )
    }

    /// Aggregates values per key into a different type (Spark's
    /// `aggregateByKey`).
    pub fn aggregate_by_key<C: Data>(
        &self,
        num_partitions: usize,
        zero: C,
        seq: impl Fn(C, &V) -> C + Send + Sync + 'static,
        comb: impl Fn(C, C) -> C + Send + Sync + 'static,
    ) -> Dataset<(K, C)> {
        let seq = Arc::new(seq);
        let sq = Arc::clone(&seq);
        self.combine_by_key(
            num_partitions,
            move |v| sq(zero.clone(), v),
            move |acc, v| seq(acc, v),
            comb,
        )
    }

    /// Groups all values per key, shuffling into `num_partitions` hash
    /// partitions.
    pub fn group_by_key(&self, num_partitions: usize) -> Dataset<(K, Vec<V>)> {
        let map_side: MapSideFn = Arc::new(move |block, n| {
            let pairs = block.as_slice::<(K, V)>("group_by_key map-side")?;
            Ok(Self::bucket_pairs(pairs, n).into_iter().map(Block::from_vec).collect())
        });
        let agg: ShuffleAggFn = Arc::new(move |p, per_dep| {
            let ctx = format!("group_by_key agg@{p}");
            let mut groups: FxHashMap<K, Vec<V>> = FxHashMap::default();
            for block in &per_dep[0] {
                for (k, v) in block.as_slice::<(K, V)>(&ctx)? {
                    groups.entry(k.clone()).or_default().push(v.clone());
                }
            }
            Ok(Block::from_vec(groups.into_iter().collect::<Vec<(K, Vec<V>)>>()))
        });
        self.shuffle_node("group_by_key", num_partitions, CostSpec::SHUFFLE_AGG, map_side, agg)
    }

    /// Hash-partitions the dataset by key into `num_partitions` partitions.
    ///
    /// A no-op (returns a clone of `self`) when the dataset is already
    /// partitioned this way, so repeated calls do not add shuffles.
    pub fn partition_by(&self, num_partitions: usize) -> Dataset<(K, V)> {
        let existing = self.context().plan().read().node(self.id()).expect("own id").partitioner;
        if existing == Some(HashPartitioner::new(num_partitions)) {
            return self.clone();
        }
        let map_side: MapSideFn = Arc::new(move |block, n| {
            let pairs = block.as_slice::<(K, V)>("partition_by map-side")?;
            Ok(Self::bucket_pairs(pairs, n).into_iter().map(Block::from_vec).collect())
        });
        let agg: ShuffleAggFn = Arc::new(move |p, per_dep| {
            let ctx = format!("partition_by agg@{p}");
            let mut out: Vec<(K, V)> = Vec::new();
            for block in &per_dep[0] {
                out.extend_from_slice(block.as_slice::<(K, V)>(&ctx)?);
            }
            Ok(Block::from_vec(out))
        });
        self.shuffle_node("partition_by", num_partitions, CostSpec::SHUFFLE_AGG, map_side, agg)
    }

    /// Applies `f` to every value, keeping keys (and partitioning).
    pub fn map_values<W: Data>(
        &self,
        f: impl Fn(&V) -> W + Send + Sync + 'static,
    ) -> Dataset<(K, W)> {
        let id = self.id();
        self.narrow_keyed("map_values", vec![id], move |p, inputs| {
            let ctx = format!("map_values@{p}");
            let v: Vec<(K, W)> = inputs[0]
                .as_slice::<(K, V)>(&ctx)?
                .iter()
                .map(|(k, v)| (k.clone(), f(v)))
                .collect();
            Ok(Block::from_vec(v))
        })
    }

    /// Applies `f` to every value and flattens, keeping keys (and
    /// partitioning).
    pub fn flat_map_values<W: Data, I>(
        &self,
        f: impl Fn(&V) -> I + Send + Sync + 'static,
    ) -> Dataset<(K, W)>
    where
        I: IntoIterator<Item = W>,
    {
        let id = self.id();
        self.narrow_keyed("flat_map_values", vec![id], move |p, inputs| {
            let ctx = format!("flat_map_values@{p}");
            let mut out: Vec<(K, W)> = Vec::new();
            for (k, v) in inputs[0].as_slice::<(K, V)>(&ctx)? {
                out.extend(f(v).into_iter().map(|w| (k.clone(), w)));
            }
            Ok(Block::from_vec(out))
        })
    }

    /// A narrow keyed operator that preserves the known partitioner.
    fn narrow_keyed<U: Data>(
        &self,
        name: &str,
        deps: Vec<blaze_common::ids::RddId>,
        f: impl Fn(usize, &[Block]) -> Result<Block> + Send + Sync + 'static,
    ) -> Dataset<U> {
        let parts = self.num_partitions();
        let name = name.to_string();
        let partitioner = self.context().plan().read().node(self.id()).expect("own id").partitioner;
        let id = self.context().add_node(|id| RddNode {
            id,
            name,
            num_partitions: parts,
            deps: deps.into_iter().map(Dep::Narrow).collect(),
            compute: Compute::Narrow(Arc::new(f)),
            cost: CostSpec::NARROW,
            ser_factor: 1.0,
            partitioner,
            cache_annotated: false,
            unpersist_requested: false,
        });
        Dataset::new(self.context().clone(), id, parts)
    }

    /// Returns the keys.
    pub fn keys(&self) -> Dataset<K> {
        self.map(|(k, _)| k.clone()).named("keys")
    }

    /// Returns the values.
    pub fn values(&self) -> Dataset<V> {
        self.map(|(_, v)| v.clone()).named("values")
    }

    /// Inner join on key, shuffling both sides into `num_partitions`
    /// co-partitioned partitions (no shuffle for already-partitioned sides).
    pub fn join<W: Data>(
        &self,
        other: &Dataset<(K, W)>,
        num_partitions: usize,
    ) -> Dataset<(K, (V, W))> {
        let left = self.partition_by(num_partitions);
        let right = other.partition_by(num_partitions);
        left.zip_partitions(&right, |l: &[(K, V)], r: &[(K, W)]| {
            let mut table: FxHashMap<K, Vec<W>> = FxHashMap::default();
            for (k, w) in r {
                table.entry(k.clone()).or_default().push(w.clone());
            }
            let mut out = Vec::new();
            for (k, v) in l {
                if let Some(ws) = table.get(k) {
                    for w in ws {
                        out.push((k.clone(), (v.clone(), w.clone())));
                    }
                }
            }
            out
        })
        .named("join")
        .assume_partitioned(num_partitions)
    }

    /// Left outer join on key.
    pub fn left_outer_join<W: Data>(
        &self,
        other: &Dataset<(K, W)>,
        num_partitions: usize,
    ) -> Dataset<(K, (V, Option<W>))> {
        let left = self.partition_by(num_partitions);
        let right = other.partition_by(num_partitions);
        left.zip_partitions(&right, |l: &[(K, V)], r: &[(K, W)]| {
            let mut table: FxHashMap<K, Vec<W>> = FxHashMap::default();
            for (k, w) in r {
                table.entry(k.clone()).or_default().push(w.clone());
            }
            let mut out = Vec::new();
            for (k, v) in l {
                match table.get(k) {
                    Some(ws) => {
                        for w in ws {
                            out.push((k.clone(), (v.clone(), Some(w.clone()))));
                        }
                    }
                    None => out.push((k.clone(), (v.clone(), None))),
                }
            }
            out
        })
        .named("left_outer_join")
        .assume_partitioned(num_partitions)
    }

    /// Groups both datasets by key into aligned `(values_left, values_right)`
    /// lists.
    pub fn cogroup<W: Data>(
        &self,
        other: &Dataset<(K, W)>,
        num_partitions: usize,
    ) -> CoGrouped<K, V, W> {
        let left = self.partition_by(num_partitions);
        let right = other.partition_by(num_partitions);
        left.zip_partitions(&right, |l: &[(K, V)], r: &[(K, W)]| {
            let mut table: FxHashMap<K, (Vec<V>, Vec<W>)> = FxHashMap::default();
            for (k, v) in l {
                table.entry(k.clone()).or_default().0.push(v.clone());
            }
            for (k, w) in r {
                table.entry(k.clone()).or_default().1.push(w.clone());
            }
            table.into_iter().collect()
        })
        .named("cogroup")
        .assume_partitioned(num_partitions)
    }

    /// Counts values per key on the driver.
    pub fn count_by_key(&self) -> Result<FxHashMap<K, u64>> {
        let counted = self.map_values(|_| 1u64).reduce_by_key(self.num_partitions(), |a, b| a + b);
        Ok(counted.collect()?.into_iter().collect())
    }
}

impl<T> Dataset<T>
where
    T: Data + Hash + Eq,
{
    /// Removes duplicate elements, shuffling into `num_partitions`.
    pub fn distinct(&self, num_partitions: usize) -> Dataset<T> {
        self.map(|t| (t.clone(), ()))
            .reduce_by_key(num_partitions, |_, _| ())
            .map(|(t, ())| t.clone())
            .named("distinct")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::runner::LocalRunner;

    fn ctx() -> Context {
        Context::new(LocalRunner::new())
    }

    #[test]
    fn reduce_by_key_sums_per_key() {
        let ctx = ctx();
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i % 5, 1u64)).collect();
        let ds = ctx.parallelize(pairs, 4).reduce_by_key(3, |a, b| a + b);
        let mut out = ds.collect().unwrap();
        out.sort();
        assert_eq!(out, (0..5).map(|k| (k, 20u64)).collect::<Vec<_>>());
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let ctx = ctx();
        let pairs = vec![(1u32, 10u32), (2, 20), (1, 11), (2, 21), (1, 12)];
        let ds = ctx.parallelize(pairs, 2).group_by_key(2);
        let mut out = ds.collect().unwrap();
        out.sort();
        for (_, vs) in out.iter_mut() {
            vs.sort();
        }
        assert_eq!(out, vec![(1, vec![10, 11, 12]), (2, vec![20, 21])]);
    }

    #[test]
    fn partition_by_is_idempotent_in_the_plan() {
        let ctx = ctx();
        let ds = ctx.parallelize(vec![(1u32, 1u32)], 2);
        let p1 = ds.partition_by(4);
        let before = ctx.plan().read().len();
        let p2 = p1.partition_by(4);
        assert_eq!(ctx.plan().read().len(), before, "no new node expected");
        assert_eq!(p1.id(), p2.id());
        // A different partition count still shuffles.
        let p3 = p2.partition_by(8);
        assert_ne!(p3.id(), p2.id());
    }

    #[test]
    fn join_matches_per_key() {
        let ctx = ctx();
        let left = ctx.parallelize(vec![(1u32, "a"), (2, "b"), (3, "c")], 2);
        let right = ctx.parallelize(vec![(1u32, 10u64), (2, 20), (2, 21), (4, 40)], 2);
        let mut out = left.map_values(|s| s.to_string()).join(&right, 3).collect().unwrap();
        out.sort();
        assert_eq!(
            out,
            vec![
                (1, ("a".to_string(), 10)),
                (2, ("b".to_string(), 20)),
                (2, ("b".to_string(), 21)),
            ]
        );
    }

    #[test]
    fn left_outer_join_keeps_unmatched_left() {
        let ctx = ctx();
        let left = ctx.parallelize(vec![(1u32, 1u8), (9, 9)], 2);
        let right = ctx.parallelize(vec![(1u32, 5u8)], 2);
        let mut out = left.left_outer_join(&right, 2).collect().unwrap();
        out.sort();
        assert_eq!(out, vec![(1, (1, Some(5))), (9, (9, None))]);
    }

    #[test]
    fn cogroup_aligns_both_sides() {
        let ctx = ctx();
        let left = ctx.parallelize(vec![(1u32, 1u8), (1, 2), (2, 3)], 2);
        let right = ctx.parallelize(vec![(2u32, 9u8), (3, 8)], 2);
        let mut out = left.cogroup(&right, 2).collect().unwrap();
        out.sort_by_key(|(k, _)| *k);
        for (_, (l, r)) in out.iter_mut() {
            l.sort();
            r.sort();
        }
        assert_eq!(
            out,
            vec![(1, (vec![1, 2], vec![])), (2, (vec![3], vec![9])), (3, (vec![], vec![8])),]
        );
    }

    #[test]
    fn distinct_deduplicates() {
        let ctx = ctx();
        let ds = ctx.parallelize(vec![1u32, 2, 2, 3, 3, 3], 3).distinct(2);
        let mut out = ds.collect().unwrap();
        out.sort();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn count_by_key_counts() {
        let ctx = ctx();
        let ds = ctx.parallelize(vec![("a", 1u8), ("b", 2), ("a", 3)], 2);
        let ds = ds.map(|(k, v)| (k.to_string(), *v));
        let counts = ds.count_by_key().unwrap();
        assert_eq!(counts.get("a"), Some(&2));
        assert_eq!(counts.get("b"), Some(&1));
    }

    #[test]
    fn combine_by_key_builds_arbitrary_accumulators() {
        let ctx = ctx();
        let pairs: Vec<(u32, u32)> = vec![(1, 5), (2, 7), (1, 3), (1, 2), (2, 1)];
        // Accumulate (count, max) per key.
        let ds = ctx.parallelize(pairs, 3).combine_by_key(
            2,
            |v| (1u32, *v),
            |(n, m), v| (n + 1, m.max(*v)),
            |(n1, m1), (n2, m2)| (n1 + n2, m1.max(m2)),
        );
        let mut out = ds.collect().unwrap();
        out.sort();
        assert_eq!(out, vec![(1, (3, 5)), (2, (2, 7))]);
    }

    #[test]
    fn fold_by_key_matches_reduce_by_key_for_monoids() {
        let ctx = ctx();
        let pairs: Vec<(u32, u64)> = (0..60).map(|i| (i % 4, i as u64)).collect();
        let folded = ctx.parallelize(pairs.clone(), 4).fold_by_key(2, 0, |a, b| a + b);
        let reduced = ctx.parallelize(pairs, 4).reduce_by_key(2, |a, b| a + b);
        let mut f = folded.collect().unwrap();
        let mut r = reduced.collect().unwrap();
        f.sort();
        r.sort();
        assert_eq!(f, r);
    }

    #[test]
    fn aggregate_by_key_changes_the_value_type() {
        let ctx = ctx();
        let pairs: Vec<(u32, u32)> = vec![(1, 10), (1, 20), (2, 5)];
        // Average per key via (sum, count).
        let ds = ctx.parallelize(pairs, 2).aggregate_by_key(
            2,
            (0u64, 0u64),
            |(s, n), v| (s + *v as u64, n + 1),
            |(s1, n1), (s2, n2)| (s1 + s2, n1 + n2),
        );
        let mut out = ds.collect().unwrap();
        out.sort();
        assert_eq!(out, vec![(1, (30, 2)), (2, (5, 1))]);
    }

    #[test]
    fn keys_and_values_project() {
        let ctx = ctx();
        let ds = ctx.parallelize(vec![(1u32, 10u32), (2, 20)], 1);
        let mut ks = ds.keys().collect().unwrap();
        ks.sort();
        assert_eq!(ks, vec![1, 2]);
        let mut vs = ds.values().collect().unwrap();
        vs.sort();
        assert_eq!(vs, vec![10, 20]);
    }

    #[test]
    fn map_values_preserves_partitioner() {
        let ctx = ctx();
        let ds = ctx.parallelize(vec![(1u32, 1u32)], 2).partition_by(4);
        let mapped = ds.map_values(|v| v + 1);
        let plan = ctx.plan().read();
        assert_eq!(plan.node(mapped.id()).unwrap().partitioner, Some(HashPartitioner::new(4)));
    }
}
