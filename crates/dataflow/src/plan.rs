//! The type-erased lineage plan.
//!
//! Every transformation appends an [`RddNode`] to the shared [`Plan`]. The
//! plan is the source of truth for lineage: the engine executes it, the
//! fault-tolerance path recomputes from it, and Blaze's `CostLineage`
//! mirrors it with cost metrics attached (paper §5.3).

use crate::block::Block;
use blaze_common::error::{BlazeError, Result};
use blaze_common::ids::RddId;
use std::sync::Arc;

/// The compute-time model of one operator.
///
/// The engine charges `fixed_ns + ns_per_elem * input_elements +
/// ns_per_byte * input_bytes` of simulated time per task of this operator
/// (sources use their output as "input"). Workloads override specs on heavy
/// operators (tree building, model updates) to shape computation realism;
/// the defaults below are calibrated for generic record processing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSpec {
    /// Fixed per-task setup cost in nanoseconds.
    pub fixed_ns: f64,
    /// Cost per input element in nanoseconds.
    pub ns_per_elem: f64,
    /// Cost per input byte in nanoseconds.
    pub ns_per_byte: f64,
}

impl CostSpec {
    /// A zero-cost spec (used by bookkeeping-only nodes).
    pub const FREE: CostSpec = CostSpec { fixed_ns: 0.0, ns_per_elem: 0.0, ns_per_byte: 0.0 };

    /// Default cost of reading/generating source data (input parsing).
    pub const SOURCE: CostSpec =
        CostSpec { fixed_ns: 50_000.0, ns_per_elem: 150.0, ns_per_byte: 0.5 };

    /// Default cost of an element-wise narrow operator (`map`, `filter`).
    /// Calibrated to JVM-era per-record costs (object churn, virtual calls).
    pub const NARROW: CostSpec =
        CostSpec { fixed_ns: 20_000.0, ns_per_elem: 120.0, ns_per_byte: 0.25 };

    /// Default cost of a shuffle aggregation (`reduce_by_key`, `group_by_key`).
    pub const SHUFFLE_AGG: CostSpec =
        CostSpec { fixed_ns: 50_000.0, ns_per_elem: 350.0, ns_per_byte: 0.6 };

    /// Creates a spec from its three components.
    pub const fn new(fixed_ns: f64, ns_per_elem: f64, ns_per_byte: f64) -> Self {
        Self { fixed_ns, ns_per_elem, ns_per_byte }
    }

    /// Returns a copy scaled by `factor` (e.g. a 10x heavier map).
    pub fn scaled(self, factor: f64) -> Self {
        Self {
            fixed_ns: self.fixed_ns * factor,
            ns_per_elem: self.ns_per_elem * factor,
            ns_per_byte: self.ns_per_byte * factor,
        }
    }

    /// Charges this spec for a task consuming `elems` elements / `bytes` bytes.
    pub fn charge_ns(&self, elems: u64, bytes: u64) -> f64 {
        self.fixed_ns + self.ns_per_elem * elems as f64 + self.ns_per_byte * bytes as f64
    }
}

impl Default for CostSpec {
    fn default() -> Self {
        Self::NARROW
    }
}

/// Map-side shuffle writer: splits one parent partition into `n` buckets.
pub type MapSideFn = Arc<dyn Fn(&Block, usize) -> Result<Vec<Block>> + Send + Sync>;

/// Generator of one source partition (receives the partition index).
pub type SourceFn = Arc<dyn Fn(usize) -> Result<Block> + Send + Sync>;

/// Narrow operator: combines the same-index partition of every narrow parent
/// (receives the partition index first).
pub type NarrowFn = Arc<dyn Fn(usize, &[Block]) -> Result<Block> + Send + Sync>;

/// Shuffle aggregator: for each shuffle dependency, receives the buckets
/// addressed to this reduce partition (one block per map task) and combines
/// them into the output partition (receives the partition index first).
pub type ShuffleAggFn = Arc<dyn Fn(usize, &[Vec<Block>]) -> Result<Block> + Send + Sync>;

/// How an RDD's partitions are computed.
#[derive(Clone)]
pub enum Compute {
    /// Leaf node: deterministically generates partition `i`.
    Source(SourceFn),
    /// Pipelined operator over the same-index partitions of narrow parents.
    Narrow(NarrowFn),
    /// Stage-boundary operator over shuffled buckets.
    ShuffleAgg(ShuffleAggFn),
}

impl std::fmt::Debug for Compute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Compute::Source(_) => f.write_str("Source"),
            Compute::Narrow(_) => f.write_str("Narrow"),
            Compute::ShuffleAgg(_) => f.write_str("ShuffleAgg"),
        }
    }
}

/// One dependency edge of an RDD.
#[derive(Clone)]
pub enum Dep {
    /// One-to-one partition dependency (stays within a stage).
    Narrow(RddId),
    /// All-to-all dependency (stage boundary). Carries the map-side writer
    /// that buckets parent partitions for the shuffle.
    Shuffle {
        /// The parent RDD whose partitions are shuffled.
        parent: RddId,
        /// Splits one parent partition into per-reducer buckets.
        map_side: MapSideFn,
    },
}

impl Dep {
    /// Returns the parent RDD of this dependency.
    pub fn parent(&self) -> RddId {
        match self {
            Dep::Narrow(p) => *p,
            Dep::Shuffle { parent, .. } => *parent,
        }
    }

    /// Returns true for shuffle dependencies.
    pub fn is_shuffle(&self) -> bool {
        matches!(self, Dep::Shuffle { .. })
    }
}

impl std::fmt::Debug for Dep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dep::Narrow(p) => write!(f, "Narrow({p})"),
            Dep::Shuffle { parent, .. } => write!(f, "Shuffle({parent})"),
        }
    }
}

/// One logical dataset in the lineage plan.
#[derive(Debug, Clone)]
pub struct RddNode {
    /// Unique id of this RDD within the plan.
    pub id: RddId,
    /// Human-readable operator name (for lineage displays and debugging).
    pub name: String,
    /// Number of partitions.
    pub num_partitions: usize,
    /// Dependencies on parent RDDs.
    pub deps: Vec<Dep>,
    /// How partitions are computed.
    pub compute: Compute,
    /// Compute-time model for this operator.
    pub cost: CostSpec,
    /// Relative serialization cost of this RDD's element type (1.0 = plain
    /// records; SVD++-style nested structures use 2.5–6.4, paper §7.2).
    pub ser_factor: f64,
    /// The partitioner this RDD's output is known to follow, if any.
    /// Co-partitioned datasets can be joined without another shuffle.
    pub partitioner: Option<crate::partitioner::HashPartitioner>,
    /// True if the user annotated this dataset with `cache()`.
    pub cache_annotated: bool,
    /// True once the user called `unpersist()` on this dataset.
    pub unpersist_requested: bool,
}

impl RddNode {
    /// Returns true if this node is a shuffle aggregation (stage root).
    pub fn is_shuffle(&self) -> bool {
        matches!(self.compute, Compute::ShuffleAgg(_))
    }

    /// Returns the parent ids of every dependency, in declaration order.
    pub fn parent_ids(&self) -> impl Iterator<Item = RddId> + '_ {
        self.deps.iter().map(Dep::parent)
    }
}

/// The shared lineage plan: an append-only DAG of [`RddNode`]s.
#[derive(Debug, Default)]
pub struct Plan {
    nodes: Vec<RddNode>,
}

impl Plan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a node built by `build` (which receives the assigned id).
    ///
    /// Dependencies must reference existing nodes; this is validated so the
    /// plan is cycle-free by construction.
    pub fn add_node(&mut self, build: impl FnOnce(RddId) -> RddNode) -> Result<RddId> {
        let id = RddId(self.nodes.len() as u32);
        let node = build(id);
        if node.id != id {
            return Err(BlazeError::InvalidPlan(format!(
                "node built with id {} but assigned {id}",
                node.id
            )));
        }
        if node.num_partitions == 0 {
            return Err(BlazeError::InvalidPlan(format!("{id} has zero partitions")));
        }
        for dep in &node.deps {
            if dep.parent().raw() >= id.raw() {
                return Err(BlazeError::InvalidPlan(format!(
                    "{id} depends on not-yet-defined {}",
                    dep.parent()
                )));
            }
        }
        match (&node.compute, node.deps.is_empty()) {
            (Compute::Source(_), false) => {
                return Err(BlazeError::InvalidPlan(format!("{id}: source with deps")))
            }
            (Compute::Narrow(_), true) | (Compute::ShuffleAgg(_), true) => {
                return Err(BlazeError::InvalidPlan(format!("{id}: operator without deps")))
            }
            _ => {}
        }
        if matches!(node.compute, Compute::Narrow(_)) {
            for dep in &node.deps {
                if dep.is_shuffle() {
                    return Err(BlazeError::InvalidPlan(format!(
                        "{id}: narrow compute with shuffle dep"
                    )));
                }
                let parent = self.node(dep.parent())?;
                if parent.num_partitions != node.num_partitions {
                    return Err(BlazeError::InvalidPlan(format!(
                        "{id}: narrow dep on {} with {} partitions (self has {})",
                        parent.id, parent.num_partitions, node.num_partitions
                    )));
                }
            }
        }
        if matches!(node.compute, Compute::ShuffleAgg(_)) {
            for dep in &node.deps {
                if !dep.is_shuffle() {
                    return Err(BlazeError::InvalidPlan(format!(
                        "{id}: shuffle compute with narrow dep"
                    )));
                }
            }
        }
        self.nodes.push(node);
        Ok(id)
    }

    /// Looks up a node.
    pub fn node(&self, id: RddId) -> Result<&RddNode> {
        self.nodes.get(id.raw() as usize).ok_or_else(|| BlazeError::UnknownRdd(id.to_string()))
    }

    /// Looks up a node mutably.
    pub fn node_mut(&mut self, id: RddId) -> Result<&mut RddNode> {
        self.nodes.get_mut(id.raw() as usize).ok_or_else(|| BlazeError::UnknownRdd(id.to_string()))
    }

    /// Returns the number of nodes in the plan.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns true if the plan has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over all nodes in id order.
    pub fn iter(&self) -> impl Iterator<Item = &RddNode> {
        self.nodes.iter()
    }

    /// All nodes in id order, as a slice (plan-introspection accessor).
    pub fn nodes(&self) -> &[RddNode] {
        &self.nodes
    }

    /// Number of nodes that consume each node's output (indexed by raw id).
    /// This is the static reference count LRC-style analyses are built on;
    /// each consumer is counted once, however many dependency edges it
    /// declares on the same parent.
    pub fn consumer_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            let mut seen: Vec<RddId> = Vec::with_capacity(node.deps.len());
            for parent in node.parent_ids() {
                if !seen.contains(&parent) {
                    seen.push(parent);
                    counts[parent.raw() as usize] += 1;
                }
            }
        }
        counts
    }

    /// Marks an RDD as cache-annotated (the `cache()` user API).
    pub fn mark_cached(&mut self, id: RddId) -> Result<()> {
        let node = self.node_mut(id)?;
        node.cache_annotated = true;
        node.unpersist_requested = false;
        Ok(())
    }

    /// Marks an RDD as unpersisted (the `unpersist()` user API).
    pub fn mark_unpersisted(&mut self, id: RddId) -> Result<()> {
        self.node_mut(id)?.unpersist_requested = true;
        Ok(())
    }

    /// Returns all ancestors of `id` (excluding itself), deduplicated, in
    /// reverse-topological discovery order.
    pub fn ancestors(&self, id: RddId) -> Result<Vec<RddId>> {
        let mut seen = vec![false; self.nodes.len()];
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            for dep in &self.node(cur)?.deps {
                let p = dep.parent();
                if !seen[p.raw() as usize] {
                    seen[p.raw() as usize] = true;
                    out.push(p);
                    stack.push(p);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source_node(id: RddId, parts: usize) -> RddNode {
        RddNode {
            id,
            name: "source".into(),
            num_partitions: parts,
            deps: vec![],
            compute: Compute::Source(Arc::new(|_| Ok(Block::from_vec(vec![0u64])))),
            cost: CostSpec::SOURCE,
            ser_factor: 1.0,
            partitioner: None,
            cache_annotated: false,
            unpersist_requested: false,
        }
    }

    fn narrow_node(id: RddId, parent: RddId, parts: usize) -> RddNode {
        RddNode {
            id,
            name: "map".into(),
            num_partitions: parts,
            deps: vec![Dep::Narrow(parent)],
            compute: Compute::Narrow(Arc::new(|_, blocks| Ok(blocks[0].clone()))),
            cost: CostSpec::NARROW,
            ser_factor: 1.0,
            partitioner: None,
            cache_annotated: false,
            unpersist_requested: false,
        }
    }

    #[test]
    fn builds_a_simple_chain() {
        let mut plan = Plan::new();
        let s = plan.add_node(|id| source_node(id, 4)).unwrap();
        let m = plan.add_node(|id| narrow_node(id, s, 4)).unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.node(m).unwrap().deps[0].parent(), s);
        assert_eq!(plan.ancestors(m).unwrap(), vec![s]);
    }

    #[test]
    fn rejects_forward_references() {
        let mut plan = Plan::new();
        let err = plan.add_node(|id| narrow_node(id, RddId(5), 4)).unwrap_err();
        assert!(matches!(err, BlazeError::InvalidPlan(_)));
    }

    #[test]
    fn rejects_partition_mismatch_on_narrow_dep() {
        let mut plan = Plan::new();
        let s = plan.add_node(|id| source_node(id, 4)).unwrap();
        let err = plan.add_node(|id| narrow_node(id, s, 8)).unwrap_err();
        assert!(matches!(err, BlazeError::InvalidPlan(_)));
    }

    #[test]
    fn rejects_zero_partitions() {
        let mut plan = Plan::new();
        let err = plan.add_node(|id| source_node(id, 0)).unwrap_err();
        assert!(matches!(err, BlazeError::InvalidPlan(_)));
    }

    #[test]
    fn cache_and_unpersist_flags() {
        let mut plan = Plan::new();
        let s = plan.add_node(|id| source_node(id, 1)).unwrap();
        plan.mark_cached(s).unwrap();
        assert!(plan.node(s).unwrap().cache_annotated);
        plan.mark_unpersisted(s).unwrap();
        assert!(plan.node(s).unwrap().unpersist_requested);
        // Re-caching clears the unpersist request.
        plan.mark_cached(s).unwrap();
        assert!(!plan.node(s).unwrap().unpersist_requested);
    }

    #[test]
    fn unknown_node_lookup_errors() {
        let plan = Plan::new();
        assert!(matches!(plan.node(RddId(3)), Err(BlazeError::UnknownRdd(_))));
    }

    #[test]
    fn cost_spec_charges_linearly() {
        let spec = CostSpec::new(100.0, 2.0, 0.5);
        assert_eq!(spec.charge_ns(10, 40), 100.0 + 20.0 + 20.0);
        let scaled = spec.scaled(2.0);
        assert_eq!(scaled.charge_ns(10, 40), 2.0 * (100.0 + 20.0 + 20.0));
    }

    #[test]
    fn introspection_accessors_expose_structure() {
        let mut plan = Plan::new();
        let s = plan.add_node(|id| source_node(id, 2)).unwrap();
        let a = plan.add_node(|id| narrow_node(id, s, 2)).unwrap();
        let b = plan.add_node(|id| narrow_node(id, s, 2)).unwrap();
        let mut join = narrow_node(RddId(3), a, 2);
        join.deps.push(Dep::Narrow(b));
        // A duplicate edge on the same parent still counts one consumer.
        join.deps.push(Dep::Narrow(a));
        let j = plan.add_node(move |_| join).unwrap();
        assert_eq!(plan.nodes().len(), 4);
        assert_eq!(plan.node(j).unwrap().parent_ids().collect::<Vec<_>>(), vec![a, b, a],);
        assert_eq!(plan.consumer_counts(), vec![2, 1, 1, 0]);
    }

    #[test]
    fn ancestors_deduplicate_diamonds() {
        let mut plan = Plan::new();
        let s = plan.add_node(|id| source_node(id, 2)).unwrap();
        let a = plan.add_node(|id| narrow_node(id, s, 2)).unwrap();
        let b = plan.add_node(|id| narrow_node(id, s, 2)).unwrap();
        let mut join = narrow_node(RddId(3), a, 2);
        join.deps.push(Dep::Narrow(b));
        let j = plan.add_node(move |_| join).unwrap();
        let mut anc = plan.ancestors(j).unwrap();
        anc.sort();
        assert_eq!(anc, vec![s, a, b]);
    }
}
