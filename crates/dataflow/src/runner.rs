//! The execution backend interface, plus a reference in-process runner.
//!
//! The dataflow layer is execution-agnostic: actions submit jobs through the
//! [`JobRunner`] installed in the [`Context`](crate::Context). The simulated
//! cluster in `blaze-engine` is the production implementation; the
//! [`LocalRunner`] here is a minimal, cache-everything reference executor
//! used for functional tests of the operator semantics themselves.

use crate::block::Block;
use crate::plan::{Compute, Dep, Plan};
use blaze_common::error::{BlazeError, Result};
use blaze_common::fxhash::FxHashMap;
use blaze_common::ids::{BlockId, RddId};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// An execution backend able to materialize the partitions of a target RDD.
pub trait JobRunner: Send + Sync + 'static {
    /// Materializes all partitions of `target`, in partition order.
    fn run_job(&self, plan: &Arc<RwLock<Plan>>, target: RddId) -> Result<Vec<Block>>;

    /// Notification that the user unpersisted `rdd` (drop any cached blocks).
    fn on_unpersist(&self, _rdd: RddId) {}
}

/// A plan check run before each job executes (e.g. the static auditor in
/// `blaze-audit`); returning an error aborts the job without running any
/// task.
pub type PreflightFn = Arc<dyn Fn(&Plan, RddId) -> Result<()> + Send + Sync>;

/// A reference in-process executor.
///
/// Memoizes every materialized partition (an effectively infinite cache), so
/// it exercises operator correctness, not caching behaviour. Target
/// partitions of a job run on `threads` OS threads; since every partition is
/// a pure function of the plan and memoization is only an optimization,
/// results are identical at any thread count.
pub struct LocalRunner {
    blocks: Mutex<FxHashMap<BlockId, Block>>,
    /// Map-side shuffle buckets keyed by (consumer RDD, dep index, map task).
    buckets: Mutex<FxHashMap<(RddId, usize, usize), Vec<Block>>>,
    threads: usize,
    /// Optional preflight check run before each job.
    preflight: Option<PreflightFn>,
}

impl Default for LocalRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalRunner {
    /// Creates a fresh single-threaded runner with empty memo tables.
    pub fn new() -> Self {
        Self { blocks: Mutex::default(), buckets: Mutex::default(), threads: 1, preflight: None }
    }

    /// Sets the number of worker threads used per job (min 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Installs a preflight check run against the plan before each job.
    #[must_use]
    pub fn with_preflight(mut self, preflight: PreflightFn) -> Self {
        self.preflight = Some(preflight);
        self
    }

    fn compute(&self, plan: &Plan, rdd: RddId, part: usize) -> Result<Block> {
        let key = BlockId::new(rdd, part as u32);
        if let Some(b) = self.blocks.lock().get(&key) {
            return Ok(b.clone());
        }
        let node = plan.node(rdd)?;
        let block = match &node.compute {
            Compute::Source(gen) => gen(part)?,
            Compute::Narrow(f) => {
                let mut inputs = Vec::with_capacity(node.deps.len());
                for dep in &node.deps {
                    inputs.push(self.compute(plan, dep.parent(), part)?);
                }
                f(part, &inputs)?
            }
            Compute::ShuffleAgg(agg) => {
                let mut per_dep = Vec::with_capacity(node.deps.len());
                for (dep_idx, dep) in node.deps.iter().enumerate() {
                    let Dep::Shuffle { parent, map_side } = dep else {
                        return Err(BlazeError::InvalidPlan(format!(
                            "{rdd}: shuffle agg with narrow dep"
                        )));
                    };
                    let num_maps = plan.node(*parent)?.num_partitions;
                    let mut incoming = Vec::with_capacity(num_maps);
                    for m in 0..num_maps {
                        let bucket_key = (rdd, dep_idx, m);
                        let cached = self.buckets.lock().get(&bucket_key).cloned();
                        let buckets = match cached {
                            Some(b) => b,
                            None => {
                                let input = self.compute(plan, *parent, m)?;
                                let b = map_side(&input, node.num_partitions)?;
                                if b.len() != node.num_partitions {
                                    return Err(BlazeError::Execution(format!(
                                        "map-side for {rdd} produced {} buckets, expected {}",
                                        b.len(),
                                        node.num_partitions
                                    )));
                                }
                                self.buckets.lock().insert(bucket_key, b.clone());
                                b
                            }
                        };
                        incoming.push(buckets[part].clone());
                    }
                    per_dep.push(incoming);
                }
                agg(part, &per_dep)?
            }
        };
        self.blocks.lock().insert(key, block.clone());
        Ok(block)
    }
}

impl JobRunner for LocalRunner {
    fn run_job(&self, plan: &Arc<RwLock<Plan>>, target: RddId) -> Result<Vec<Block>> {
        let plan = plan.read();
        if let Some(preflight) = &self.preflight {
            preflight(&plan, target)?;
        }
        let parts = plan.node(target)?.num_partitions;
        let workers = self.threads.min(parts);
        if workers <= 1 {
            return (0..parts).map(|p| self.compute(&plan, target, p)).collect();
        }

        // Scoped workers pull partition indices from a shared counter; two
        // workers may race to compute the same lineage block, but both
        // produce the same value, so the memo tables stay consistent.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut ordered: Vec<Option<Result<Block>>> = Vec::with_capacity(parts);
        ordered.resize_with(parts, || None);
        let plan: &Plan = &plan;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let p = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if p >= parts {
                                break;
                            }
                            done.push((p, self.compute(plan, target, p)));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                for (p, result) in handle.join().expect("local worker panicked") {
                    ordered[p] = Some(result);
                }
            }
        });
        ordered.into_iter().map(|r| r.expect("every partition computed")).collect()
    }

    fn on_unpersist(&self, rdd: RddId) {
        self.blocks.lock().retain(|k, _| k.rdd != rdd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CostSpec, RddNode};

    fn mk_plan() -> (Arc<RwLock<Plan>>, RddId) {
        // source(0..8 over 2 parts) -> map(x*2) -> shuffle(sum by parity)
        let mut plan = Plan::new();
        let src = plan
            .add_node(|id| RddNode {
                id,
                name: "src".into(),
                num_partitions: 2,
                deps: vec![],
                compute: Compute::Source(Arc::new(|p| {
                    let lo = p as u64 * 4;
                    Ok(Block::from_vec((lo..lo + 4).collect::<Vec<u64>>()))
                })),
                cost: CostSpec::FREE,
                ser_factor: 1.0,
                partitioner: None,
                cache_annotated: false,
                unpersist_requested: false,
            })
            .unwrap();
        let doubled = plan
            .add_node(|id| RddNode {
                id,
                name: "double".into(),
                num_partitions: 2,
                deps: vec![Dep::Narrow(src)],
                compute: Compute::Narrow(Arc::new(|_, inputs| {
                    let v: Vec<u64> =
                        inputs[0].as_slice::<u64>("t")?.iter().map(|x| x * 2).collect();
                    Ok(Block::from_vec(v))
                })),
                cost: CostSpec::FREE,
                ser_factor: 1.0,
                partitioner: None,
                cache_annotated: false,
                unpersist_requested: false,
            })
            .unwrap();
        let summed = plan
            .add_node(|id| RddNode {
                id,
                name: "sum_by_parity".into(),
                num_partitions: 2,
                deps: vec![Dep::Shuffle {
                    parent: doubled,
                    map_side: Arc::new(|block, n| {
                        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); n];
                        for &x in block.as_slice::<u64>("t")? {
                            buckets[(x % n as u64) as usize].push(x);
                        }
                        Ok(buckets.into_iter().map(Block::from_vec).collect())
                    }),
                }],
                compute: Compute::ShuffleAgg(Arc::new(|_, per_dep| {
                    let mut sum = 0u64;
                    for b in &per_dep[0] {
                        sum += b.as_slice::<u64>("t")?.iter().sum::<u64>();
                    }
                    Ok(Block::from_vec(vec![sum]))
                })),
                cost: CostSpec::FREE,
                ser_factor: 1.0,
                partitioner: None,
                cache_annotated: false,
                unpersist_requested: false,
            })
            .unwrap();
        (Arc::new(RwLock::new(plan)), summed)
    }

    #[test]
    fn executes_shuffled_pipeline() {
        let (plan, target) = mk_plan();
        let runner = LocalRunner::new();
        let blocks = runner.run_job(&plan, target).unwrap();
        let total: u64 =
            blocks.iter().map(|b| b.as_slice::<u64>("t").unwrap().iter().sum::<u64>()).sum();
        // Doubled values are all even: 0+2+...+14 = 56, all in bucket 0.
        assert_eq!(total, 56);
        let bucket0 = blocks[0].as_slice::<u64>("t").unwrap()[0];
        assert_eq!(bucket0, 56);
    }

    #[test]
    fn threaded_runner_matches_single_threaded() {
        let (plan, target) = mk_plan();
        let serial = LocalRunner::new().run_job(&plan, target).unwrap();
        for threads in [2, 4] {
            let runner = LocalRunner::new().with_threads(threads);
            let parallel = runner.run_job(&plan, target).unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(
                    a.as_slice::<u64>("t").unwrap(),
                    b.as_slice::<u64>("t").unwrap(),
                    "diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn unpersist_drops_memoized_blocks() {
        let (plan, target) = mk_plan();
        let runner = LocalRunner::new();
        runner.run_job(&plan, target).unwrap();
        assert!(!runner.blocks.lock().is_empty());
        runner.on_unpersist(target);
        assert!(runner.blocks.lock().keys().all(|k| k.rdd != target));
    }
}
