//! The typed dataset handle and its core transformations and actions.

use crate::block::{Block, Data};
use crate::context::Context;
use crate::plan::{Compute, CostSpec, Dep, RddNode};
use blaze_common::error::Result;
use blaze_common::ids::RddId;
use std::marker::PhantomData;
use std::sync::Arc;

/// A typed handle to a logical dataset (RDD) in the lineage plan.
///
/// Transformations are lazy; actions (`collect`, `count`, `reduce`, ...)
/// submit jobs. Handles are cheap to clone and share the underlying plan.
pub struct Dataset<T> {
    ctx: Context,
    id: RddId,
    num_partitions: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for Dataset<T> {
    fn clone(&self) -> Self {
        Self {
            ctx: self.ctx.clone(),
            id: self.id,
            num_partitions: self.num_partitions,
            _marker: PhantomData,
        }
    }
}

impl<T: Data> Dataset<T> {
    pub(crate) fn new(ctx: Context, id: RddId, num_partitions: usize) -> Self {
        Self { ctx, id, num_partitions, _marker: PhantomData }
    }

    /// Returns the RDD id of this dataset in the lineage plan.
    pub fn id(&self) -> RddId {
        self.id
    }

    /// Returns the driver context.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Returns the number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Re-binds this handle to another context sharing the *same* plan.
    ///
    /// In a multi-app session every application's [`Context`] grows one
    /// shared plan; `rebind` lets one app act on a dataset another app
    /// built (e.g. to demonstrate cross-app cache hits) while submitting
    /// the job as itself. Type safety is preserved — the lineage node is
    /// unchanged, only the submitting identity differs.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` does not share this dataset's plan: a handle into a
    /// foreign plan would reference an arbitrary (or missing) node.
    pub fn rebind(&self, ctx: &Context) -> Self {
        assert!(
            Arc::ptr_eq(self.ctx.plan(), ctx.plan()),
            "rebind requires a context sharing the same plan"
        );
        Self::new(ctx.clone(), self.id, self.num_partitions)
    }

    // ---- Metadata -------------------------------------------------------

    /// Sets the human-readable operator name (lineage displays, figures).
    pub fn named(self, name: &str) -> Self {
        self.ctx.plan().write().node_mut(self.id).expect("own id").name = name.to_string();
        self
    }

    /// Overrides the compute-cost model of this operator.
    pub fn with_cost(self, cost: CostSpec) -> Self {
        self.ctx.plan().write().node_mut(self.id).expect("own id").cost = cost;
        self
    }

    /// Sets the relative serialization cost of this dataset's element type.
    ///
    /// The value is stored verbatim: a negative or non-finite factor is a
    /// construction bug that the preflight audit rejects (`BA009`) instead of
    /// being silently clamped here.
    pub fn with_ser_factor(self, factor: f64) -> Self {
        self.ctx.plan().write().node_mut(self.id).expect("own id").ser_factor = factor;
        self
    }

    /// Annotates this dataset to be cached (the Spark `cache()` user API).
    ///
    /// Baseline systems obey the annotation; Blaze treats it as advisory and
    /// decides automatically (paper §5.6).
    pub fn cache(&self) -> &Self {
        self.ctx.mark_cached(self.id);
        self
    }

    /// Requests this dataset be dropped from cache storage (`unpersist()`).
    pub fn unpersist(&self) {
        self.ctx.mark_unpersisted(self.id);
    }

    // ---- Narrow transformations ----------------------------------------

    fn narrow_node<U: Data>(
        &self,
        name: &str,
        deps: Vec<RddId>,
        cost: CostSpec,
        keep_partitioner: bool,
        f: impl Fn(usize, &[Block]) -> Result<Block> + Send + Sync + 'static,
    ) -> Dataset<U> {
        let parts = self.num_partitions;
        let name = name.to_string();
        let partitioner = if keep_partitioner {
            self.ctx.plan().read().node(self.id).expect("own id").partitioner
        } else {
            None
        };
        let id = self.ctx.add_node(|id| RddNode {
            id,
            name,
            num_partitions: parts,
            deps: deps.into_iter().map(Dep::Narrow).collect(),
            compute: Compute::Narrow(Arc::new(f)),
            cost,
            ser_factor: 1.0,
            partitioner,
            cache_annotated: false,
            unpersist_requested: false,
        });
        Dataset::new(self.ctx.clone(), id, parts)
    }

    /// Applies `f` to every element.
    ///
    /// # Examples
    ///
    /// ```
    /// use blaze_dataflow::{Context, runner::LocalRunner};
    ///
    /// let ctx = Context::new(LocalRunner::new());
    /// let squares = ctx.range(0..5, 2).map(|x| x * x);
    /// assert_eq!(squares.collect().unwrap(), vec![0, 1, 4, 9, 16]);
    /// ```
    pub fn map<U: Data>(&self, f: impl Fn(&T) -> U + Send + Sync + 'static) -> Dataset<U> {
        let id = self.id;
        self.narrow_node("map", vec![id], CostSpec::NARROW, false, move |p, inputs| {
            let ctx = format!("map@{p}");
            let v: Vec<U> = inputs[0].as_slice::<T>(&ctx)?.iter().map(&f).collect();
            Ok(Block::from_vec(v))
        })
    }

    /// Keeps the elements for which `f` returns true.
    ///
    /// # Examples
    ///
    /// ```
    /// use blaze_dataflow::{Context, runner::LocalRunner};
    ///
    /// let ctx = Context::new(LocalRunner::new());
    /// let odds = ctx.range(0..10, 2).filter(|x| x % 2 == 1);
    /// assert_eq!(odds.count().unwrap(), 5);
    /// ```
    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync + 'static) -> Dataset<T> {
        let id = self.id;
        self.narrow_node("filter", vec![id], CostSpec::NARROW, true, move |p, inputs| {
            let ctx = format!("filter@{p}");
            let v: Vec<T> =
                inputs[0].as_slice::<T>(&ctx)?.iter().filter(|x| f(x)).cloned().collect();
            Ok(Block::from_vec(v))
        })
    }

    /// Applies `f` to every element and flattens the results.
    pub fn flat_map<U: Data, I>(&self, f: impl Fn(&T) -> I + Send + Sync + 'static) -> Dataset<U>
    where
        I: IntoIterator<Item = U>,
    {
        let id = self.id;
        self.narrow_node("flat_map", vec![id], CostSpec::NARROW, false, move |p, inputs| {
            let ctx = format!("flat_map@{p}");
            let v: Vec<U> = inputs[0].as_slice::<T>(&ctx)?.iter().flat_map(&f).collect();
            Ok(Block::from_vec(v))
        })
    }

    /// Applies `f` to each whole partition.
    pub fn map_partitions<U: Data>(
        &self,
        f: impl Fn(&[T]) -> Vec<U> + Send + Sync + 'static,
    ) -> Dataset<U> {
        self.map_partitions_idx(move |_, part| f(part))
    }

    /// Applies `f` to each whole partition, with its partition index.
    pub fn map_partitions_idx<U: Data>(
        &self,
        f: impl Fn(usize, &[T]) -> Vec<U> + Send + Sync + 'static,
    ) -> Dataset<U> {
        let id = self.id;
        self.narrow_node("map_partitions", vec![id], CostSpec::NARROW, false, move |p, inputs| {
            let ctx = format!("map_partitions@{p}");
            Ok(Block::from_vec(f(p, inputs[0].as_slice::<T>(&ctx)?)))
        })
    }

    /// Combines the same-index partitions of two co-partitioned datasets.
    ///
    /// # Panics
    ///
    /// Panics at graph construction if the partition counts differ.
    pub fn zip_partitions<U: Data, V: Data>(
        &self,
        other: &Dataset<U>,
        f: impl Fn(&[T], &[U]) -> Vec<V> + Send + Sync + 'static,
    ) -> Dataset<V> {
        assert_eq!(
            self.num_partitions, other.num_partitions,
            "zip_partitions requires equal partition counts"
        );
        let deps = vec![self.id, other.id];
        self.narrow_node("zip_partitions", deps, CostSpec::NARROW, false, move |p, inputs| {
            let ctx = format!("zip_partitions@{p}");
            let left = inputs[0].as_slice::<T>(&ctx)?;
            let right = inputs[1].as_slice::<U>(&ctx)?;
            Ok(Block::from_vec(f(left, right)))
        })
    }

    /// Pairs every element with a key computed by `f`.
    pub fn key_by<K: Data>(&self, f: impl Fn(&T) -> K + Send + Sync + 'static) -> Dataset<(K, T)> {
        self.map(move |t| (f(t), t.clone())).named("key_by")
    }

    // ---- Actions --------------------------------------------------------

    /// Materializes the dataset and gathers all elements on the driver.
    pub fn collect(&self) -> Result<Vec<T>> {
        let blocks = self.ctx.run_job(self.id)?;
        let mut out = Vec::new();
        for (p, b) in blocks.iter().enumerate() {
            out.extend(b.to_vec::<T>(&format!("collect {}[{p}]", self.id))?);
        }
        Ok(out)
    }

    /// Materializes the dataset and returns the total element count.
    pub fn count(&self) -> Result<u64> {
        let blocks = self.ctx.run_job(self.id)?;
        Ok(blocks.iter().map(|b| b.len() as u64).sum())
    }

    /// Materializes the dataset without transferring results (like
    /// `foreach(_ => ())`); used to drive iterations.
    pub fn materialize(&self) -> Result<()> {
        self.ctx.run_job(self.id)?;
        Ok(())
    }

    /// Reduces all elements with `f`; `None` for an empty dataset.
    pub fn reduce(&self, f: impl Fn(&T, &T) -> T + Send + Sync + 'static) -> Result<Option<T>> {
        // Partial-reduce inside each partition, final reduce on the driver,
        // exactly like Spark's `reduce`.
        let f = Arc::new(f);
        let task_f = Arc::clone(&f);
        let partials = self
            .map_partitions(move |part| {
                let mut it = part.iter();
                match it.next() {
                    None => Vec::new(),
                    Some(first) => {
                        vec![it.fold(first.clone(), |acc, x| task_f(&acc, x))]
                    }
                }
            })
            .named("reduce_partials");
        let partials = partials.collect()?;
        Ok(partials.into_iter().reduce(|a, b| f(&a, &b)))
    }

    /// Aggregates the dataset with a per-element `seq` function and a
    /// cross-partition `comb` function, starting from `zero`.
    pub fn aggregate<A: Data>(
        &self,
        zero: A,
        seq: impl Fn(A, &T) -> A + Send + Sync + 'static,
        comb: impl Fn(A, A) -> A + Send + Sync + 'static,
    ) -> Result<A> {
        let z = zero.clone();
        let partials = self
            .map_partitions(move |part| vec![part.iter().fold(z.clone(), &seq)])
            .named("aggregate_partials");
        let partials = partials.collect()?;
        Ok(partials.into_iter().fold(zero, comb))
    }

    /// Returns up to `n` elements from the start of the dataset.
    pub fn take(&self, n: usize) -> Result<Vec<T>> {
        let mut all = self.collect()?;
        all.truncate(n);
        Ok(all)
    }
}

impl<K, V> Dataset<(K, V)>
where
    K: Data + std::hash::Hash + Eq,
    V: Data,
{
    /// Declares that this dataset's records are hash-partitioned by key
    /// over `num_partitions` partitions (advanced API).
    ///
    /// Used by key-preserving operators whose construction guarantees the
    /// layout (e.g. the zip stage of a co-partitioned join), so downstream
    /// `partition_by` calls become no-ops. In debug builds every computed
    /// partition is verified against the declared layout: a key hashing to
    /// a different partition fails the task loudly with BA008 instead of
    /// silently corrupting keyed results. Release builds skip the check
    /// entirely (the declaration is trusted).
    pub fn assume_partitioned(self, num_partitions: usize) -> Self {
        let plan = self.ctx.plan();
        let mut guard = plan.write();
        let node = guard.node_mut(self.id).expect("own id");
        node.partitioner = Some(crate::partitioner::HashPartitioner::new(num_partitions));
        #[cfg(debug_assertions)]
        {
            let name = node.name.clone();
            let check = move |p: usize, block: &Block| -> Result<()> {
                verify_keyed_layout::<K, V>(&name, p, num_partitions, block)
            };
            node.compute = match node.compute.clone() {
                Compute::Source(f) => Compute::Source(Arc::new(move |p| {
                    let b = f(p)?;
                    check(p, &b)?;
                    Ok(b)
                })),
                Compute::Narrow(f) => Compute::Narrow(Arc::new(move |p, inputs| {
                    let b = f(p, inputs)?;
                    check(p, &b)?;
                    Ok(b)
                })),
                Compute::ShuffleAgg(f) => Compute::ShuffleAgg(Arc::new(move |p, buckets| {
                    let b = f(p, buckets)?;
                    check(p, &b)?;
                    Ok(b)
                })),
            };
        }
        drop(guard);
        self
    }
}

/// Debug-build enforcement of [`Dataset::assume_partitioned`]: every key in
/// the computed partition must hash to that partition under the declared
/// layout. A violation is the BA008 audit failure — an assumed partitioner
/// that does not hold silently corrupts every downstream keyed operator
/// that skips its shuffle on the strength of the declaration.
#[cfg(debug_assertions)]
fn verify_keyed_layout<K, V>(
    name: &str,
    part: usize,
    num_partitions: usize,
    block: &Block,
) -> Result<()>
where
    K: Data + std::hash::Hash + Eq,
    V: Data,
{
    let partitioner = crate::partitioner::HashPartitioner::new(num_partitions);
    let pairs = block.as_slice::<(K, V)>(&format!("assume_partitioned '{name}'@{part}"))?;
    for (k, _) in pairs {
        let want = partitioner.partition(k);
        if want != part {
            return Err(blaze_common::error::BlazeError::Audit {
                code: "BA008".into(),
                message: format!(
                    "assume_partitioned({num_partitions}) on '{name}' does not hold: partition \
                     {part} holds a key that hashes to partition {want}"
                ),
            });
        }
    }
    Ok(())
}

impl<T: Data> std::fmt::Debug for Dataset<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("id", &self.id)
            .field("num_partitions", &self.num_partitions)
            .finish()
    }
}
