//! A lazily evaluated, lineage-tracked dataflow API in the style of Spark RDDs.
//!
//! This crate is the first substrate of the Blaze reproduction: it provides
//! the *logical* layer — typed [`Dataset`]s whose transformations build a
//! type-erased lineage [`plan::Plan`] — while execution, caching and cost
//! accounting live in `blaze-engine`.
//!
//! # Model (paper §2.1–§2.2)
//!
//! - A [`Dataset<T>`] is a handle to a logical RDD: a set of partitions of
//!   `T` values produced by an operator over parent RDDs.
//! - Transformations (`map`, `filter`, `reduce_by_key`, `join`, ...) are lazy:
//!   they only append nodes to the shared lineage plan.
//! - Actions (`collect`, `count`, `reduce`) submit a *job* through the
//!   [`runner::JobRunner`] installed in the [`Context`]; in iterative
//!   workloads each iteration triggers one job over an identically shaped
//!   sub-DAG.
//! - Jobs split into *stages* at shuffle dependencies ([`planner`]).
//! - `cache()` / `unpersist()` annotate datasets exactly like Spark's user
//!   APIs; whether annotations are obeyed is up to the installed cache
//!   controller (baselines obey, Blaze decides automatically).
//!
//! # Example
//!
//! ```
//! use blaze_dataflow::{Context, runner::LocalRunner};
//!
//! let ctx = Context::new(LocalRunner::default());
//! let numbers = ctx.parallelize((0u64..100).collect::<Vec<_>>(), 4);
//! let even_squares = numbers.filter(|n| n % 2 == 0).map(|n| n * n);
//! let total: u64 = even_squares.collect().unwrap().into_iter().sum();
//! assert_eq!(total, (0..100).filter(|n| n % 2 == 0).map(|n| n * n).sum::<u64>());
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod context;
pub mod dataset;
pub mod extra_ops;
pub mod pair;
pub mod partitioner;
pub mod plan;
pub mod planner;
pub mod runner;

pub use block::{Block, Data};
pub use context::Context;
pub use dataset::Dataset;
pub use partitioner::HashPartitioner;
pub use plan::{Compute, CostSpec, Dep, Plan, RddNode};
pub use planner::{JobPlan, StagePlan};
