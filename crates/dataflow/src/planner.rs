//! Stage planning: splitting a job's lineage at shuffle boundaries.
//!
//! Mirrors Spark's `DAGScheduler` planning step (paper §2.2): a *job* is the
//! sub-DAG needed to materialize a target RDD; it is divided into *stages*,
//! each a pipeline of narrow operators, with stage boundaries at shuffle
//! dependencies. A stage whose output feeds a shuffle is a map stage; the
//! stage producing the job target is the result stage.

use crate::plan::{Dep, Plan};
use blaze_common::error::Result;
use blaze_common::fxhash::FxHashMap;
use blaze_common::ids::RddId;

/// One planned stage.
#[derive(Debug, Clone)]
pub struct StagePlan {
    /// Index of this stage within its [`JobPlan`] (topological order).
    pub index: usize,
    /// The RDD whose partitions this stage materializes.
    pub output: RddId,
    /// Stages that must complete first (map stages of consumed shuffles).
    pub parent_stages: Vec<usize>,
    /// Every RDD whose compute runs inside this stage's tasks (the narrow
    /// pipeline ending at `output`, including shuffle *reads*).
    pub rdds: Vec<RddId>,
    /// Number of tasks (= partitions of `output`).
    pub num_partitions: usize,
}

/// The planned stages of one job, topologically ordered (parents first).
#[derive(Debug, Clone)]
pub struct JobPlan {
    /// The RDD the job materializes.
    pub target: RddId,
    /// All stages; the last entry is always the result stage.
    pub stages: Vec<StagePlan>,
}

impl JobPlan {
    /// Returns the result stage (the one producing the job target).
    pub fn result_stage(&self) -> &StagePlan {
        self.stages.last().expect("a job always has at least one stage")
    }

    /// Total number of tasks across all stages.
    pub fn total_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.num_partitions).sum()
    }
}

/// Plans the stages required to materialize `target`.
///
/// Stages are deduplicated: if two shuffles read the same parent RDD, they
/// share one map stage (Spark's shuffle-id dedup).
pub fn plan_job(plan: &Plan, target: RddId) -> Result<JobPlan> {
    let mut planner = Planner { plan, stages: Vec::new(), by_output: FxHashMap::default() };
    planner.stage_for(target)?;
    Ok(JobPlan { target, stages: planner.stages })
}

struct Planner<'a> {
    plan: &'a Plan,
    stages: Vec<StagePlan>,
    by_output: FxHashMap<RddId, usize>,
}

impl Planner<'_> {
    /// Returns the stage index whose output is `output`, creating it (and,
    /// recursively, its parents) if needed.
    fn stage_for(&mut self, output: RddId) -> Result<usize> {
        if let Some(&idx) = self.by_output.get(&output) {
            return Ok(idx);
        }
        // Walk the narrow pipeline of this stage, collecting in-stage RDDs
        // and the map stages feeding its shuffle reads.
        let mut rdds = Vec::new();
        let mut parents = Vec::new();
        let mut visited: FxHashMap<RddId, ()> = FxHashMap::default();
        let mut stack = vec![output];
        while let Some(cur) = stack.pop() {
            if visited.insert(cur, ()).is_some() {
                continue;
            }
            rdds.push(cur);
            for dep in &self.plan.node(cur)?.deps {
                match dep {
                    Dep::Narrow(p) => stack.push(*p),
                    Dep::Shuffle { parent, .. } => {
                        let parent_stage = self.stage_for(*parent)?;
                        if !parents.contains(&parent_stage) {
                            parents.push(parent_stage);
                        }
                    }
                }
            }
        }
        rdds.sort();
        let index = self.stages.len();
        self.stages.push(StagePlan {
            index,
            output,
            parent_stages: parents,
            rdds,
            num_partitions: self.plan.node(output)?.num_partitions,
        });
        self.by_output.insert(output, index);
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::plan::{Compute, CostSpec, RddNode};
    use std::sync::Arc;

    fn node(id: RddId, parts: usize, deps: Vec<Dep>, compute: Compute) -> RddNode {
        RddNode {
            id,
            name: format!("n{}", id.raw()),
            num_partitions: parts,
            deps,
            compute,
            cost: CostSpec::FREE,
            ser_factor: 1.0,
            partitioner: None,
            cache_annotated: false,
            unpersist_requested: false,
        }
    }

    fn source(plan: &mut Plan, parts: usize) -> RddId {
        plan.add_node(|id| {
            node(id, parts, vec![], Compute::Source(Arc::new(|_| Ok(Block::from_vec(vec![0u8])))))
        })
        .unwrap()
    }

    fn narrow(plan: &mut Plan, parent: RddId) -> RddId {
        let parts = plan.node(parent).unwrap().num_partitions;
        plan.add_node(|id| {
            node(
                id,
                parts,
                vec![Dep::Narrow(parent)],
                Compute::Narrow(Arc::new(|_, b| Ok(b[0].clone()))),
            )
        })
        .unwrap()
    }

    fn shuffle(plan: &mut Plan, parent: RddId, parts: usize) -> RddId {
        plan.add_node(|id| {
            node(
                id,
                parts,
                vec![Dep::Shuffle { parent, map_side: Arc::new(|b, n| Ok(vec![b.clone(); n])) }],
                Compute::ShuffleAgg(Arc::new(|_, _| Ok(Block::from_vec(vec![0u8])))),
            )
        })
        .unwrap()
    }

    #[test]
    fn single_stage_for_narrow_chain() {
        let mut plan = Plan::new();
        let s = source(&mut plan, 4);
        let a = narrow(&mut plan, s);
        let b = narrow(&mut plan, a);
        let jp = plan_job(&plan, b).unwrap();
        assert_eq!(jp.stages.len(), 1);
        assert_eq!(jp.result_stage().output, b);
        assert_eq!(jp.result_stage().rdds, vec![s, a, b]);
        assert_eq!(jp.total_tasks(), 4);
    }

    #[test]
    fn shuffle_splits_two_stages() {
        let mut plan = Plan::new();
        let s = source(&mut plan, 4);
        let m = narrow(&mut plan, s);
        let r = shuffle(&mut plan, m, 2);
        let f = narrow(&mut plan, r);
        let jp = plan_job(&plan, f).unwrap();
        assert_eq!(jp.stages.len(), 2);
        // Map stage first (topological order).
        assert_eq!(jp.stages[0].output, m);
        assert_eq!(jp.stages[0].rdds, vec![s, m]);
        assert!(jp.stages[0].parent_stages.is_empty());
        // Result stage contains the shuffle read and downstream narrow op.
        assert_eq!(jp.stages[1].output, f);
        assert_eq!(jp.stages[1].rdds, vec![r, f]);
        assert_eq!(jp.stages[1].parent_stages, vec![0]);
        assert_eq!(jp.stages[1].num_partitions, 2);
    }

    #[test]
    fn shared_map_stage_is_deduplicated() {
        let mut plan = Plan::new();
        let s = source(&mut plan, 4);
        let r1 = shuffle(&mut plan, s, 2);
        let r2 = shuffle(&mut plan, s, 2);
        // A narrow op joining two co-partitioned shuffle outputs.
        let j = plan
            .add_node(|id| {
                node(
                    id,
                    2,
                    vec![Dep::Narrow(r1), Dep::Narrow(r2)],
                    Compute::Narrow(Arc::new(|_, b| Ok(b[0].clone()))),
                )
            })
            .unwrap();
        let jp = plan_job(&plan, j).unwrap();
        // Stages: map(s) once, then the result stage with r1, r2, j.
        assert_eq!(jp.stages.len(), 2);
        assert_eq!(jp.stages[0].output, s);
        let result = jp.result_stage();
        assert_eq!(result.rdds, vec![r1, r2, j]);
        assert_eq!(result.parent_stages, vec![0]);
    }

    #[test]
    fn iterative_chain_produces_one_stage_per_shuffle() {
        let mut plan = Plan::new();
        let mut cur = source(&mut plan, 4);
        for _ in 0..3 {
            let m = narrow(&mut plan, cur);
            cur = shuffle(&mut plan, m, 4);
        }
        let jp = plan_job(&plan, cur).unwrap();
        assert_eq!(jp.stages.len(), 4); // 3 map stages + result stage chain
        for w in jp.stages.windows(2) {
            assert!(w[1].parent_stages.contains(&w[0].index));
        }
    }
}
