//! Type-erased materialized partitions.
//!
//! The lineage plan is type-erased (operators of arbitrary element types live
//! in one graph), so materialized partition data crosses the plan boundary as
//! [`Block`]s: cheaply clonable, immutable, `Any`-erased vectors that carry
//! their own element count and estimated byte size. Typed [`Dataset`]
//! operators downcast blocks back at the edges; a failed downcast is a
//! [`BlazeError::TypeMismatch`] rather than a panic.
//!
//! [`Dataset`]: crate::dataset::Dataset

use blaze_common::error::{BlazeError, Result};
use blaze_common::sizeof::SizeOf;
use blaze_common::ByteSize;
use std::any::Any;
use std::sync::Arc;

/// Bound for element types storable in datasets.
///
/// Everything materialized by the engine must be shareable across (simulated)
/// tasks, clonable for recomputation, and size-estimable for the memory
/// store. The blanket implementation makes any suitable type a `Data`.
pub trait Data: Clone + Send + Sync + SizeOf + 'static {}

impl<T: Clone + Send + Sync + SizeOf + 'static> Data for T {}

/// One materialized partition: an immutable, type-erased vector of elements.
///
/// Cloning a block is an `Arc` bump; blocks are never mutated after
/// construction (partitions are immutable in the RDD model).
#[derive(Clone)]
pub struct Block {
    payload: Arc<dyn Any + Send + Sync>,
    len: usize,
    bytes: ByteSize,
}

impl Block {
    /// Materializes a block from a vector of elements, estimating its size.
    pub fn from_vec<T: Data>(items: Vec<T>) -> Self {
        let bytes = blaze_common::sizeof::slice_size(&items);
        Self { len: items.len(), bytes, payload: Arc::new(items) }
    }

    /// An empty block of type `T`.
    pub fn empty<T: Data>() -> Self {
        Self::from_vec(Vec::<T>::new())
    }

    /// Returns the number of elements in the partition.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true if the partition holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the estimated in-memory footprint of the partition.
    pub fn bytes(&self) -> ByteSize {
        self.bytes
    }

    /// Borrows the elements as a typed slice.
    ///
    /// Fails with [`BlazeError::TypeMismatch`] if the block does not hold
    /// elements of type `T`; `context` is included in the error for
    /// diagnosis.
    pub fn as_slice<T: Data>(&self, context: &str) -> Result<&[T]> {
        self.payload
            .downcast_ref::<Vec<T>>()
            .map(Vec::as_slice)
            .ok_or_else(|| BlazeError::TypeMismatch { context: context.to_string() })
    }

    /// Returns the typed elements, cloning only if the block is shared.
    pub fn to_vec<T: Data>(&self, context: &str) -> Result<Vec<T>> {
        Ok(self.as_slice::<T>(context)?.to_vec())
    }
}

impl std::fmt::Debug for Block {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Block").field("len", &self.len).field("bytes", &self.bytes).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_typed_data() {
        let b = Block::from_vec(vec![1u64, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.as_slice::<u64>("t").unwrap(), &[1, 2, 3]);
        assert_eq!(b.to_vec::<u64>("t").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn wrong_type_is_an_error_not_a_panic() {
        let b = Block::from_vec(vec![1u64, 2, 3]);
        let err = b.as_slice::<String>("rdd-7[2]").unwrap_err();
        assert_eq!(err, BlazeError::TypeMismatch { context: "rdd-7[2]".into() });
    }

    #[test]
    fn size_estimate_tracks_contents() {
        let small = Block::from_vec(vec![0u8; 100]);
        let large = Block::from_vec(vec![0u64; 100]);
        assert_eq!(small.bytes(), ByteSize::from_bytes(100));
        assert_eq!(large.bytes(), ByteSize::from_bytes(800));
    }

    #[test]
    fn clones_share_payload() {
        let b = Block::from_vec(vec![String::from("x")]);
        let c = b.clone();
        assert_eq!(c.len(), b.len());
        assert_eq!(c.bytes(), b.bytes());
    }

    #[test]
    fn empty_block() {
        let b = Block::empty::<u32>();
        assert!(b.is_empty());
        assert_eq!(b.bytes(), ByteSize::ZERO);
    }
}
