//! Key partitioners for shuffle operations.
//!
//! A partitioner assigns each record key to one of `n` reduce partitions.
//! Datasets shuffled with the same partitioner and partition count are
//! *co-partitioned*, which lets `join`/`cogroup` run as narrow (in-stage)
//! operators over aligned partitions — the same optimization Spark applies.

use blaze_common::fxhash::hash_one;
use std::hash::Hash;

/// Deterministic hash partitioner.
///
/// # Examples
///
/// ```
/// use blaze_dataflow::HashPartitioner;
///
/// let p = HashPartitioner::new(8);
/// let b = p.partition(&"some-key");
/// assert!(b < 8);
/// assert_eq!(b, p.partition(&"some-key"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPartitioner {
    num_partitions: usize,
}

impl HashPartitioner {
    /// Creates a partitioner over `num_partitions` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `num_partitions` is zero.
    pub fn new(num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "partitioner needs at least one partition");
        Self { num_partitions }
    }

    /// Returns the number of buckets.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Returns the bucket for `key`.
    pub fn partition<K: Hash>(&self, key: &K) -> usize {
        (hash_one(key) % self.num_partitions as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic_and_in_range() {
        let p = HashPartitioner::new(7);
        for k in 0u64..1000 {
            let b = p.partition(&k);
            assert!(b < 7);
            assert_eq!(b, p.partition(&k));
        }
    }

    #[test]
    fn same_n_means_co_partitioned() {
        let a = HashPartitioner::new(5);
        let b = HashPartitioner::new(5);
        for k in 0u64..100 {
            assert_eq!(a.partition(&k), b.partition(&k));
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        HashPartitioner::new(0);
    }

    #[test]
    fn distributes_keys_reasonably() {
        let p = HashPartitioner::new(10);
        let mut counts = [0usize; 10];
        for k in 0u64..10_000 {
            counts[p.partition(&k)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500), "skewed: {counts:?}");
    }
}
