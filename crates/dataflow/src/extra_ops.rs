//! Additional dataset operators beyond the core set.
//!
//! These round out the Spark-style API surface: `union`, `coalesce`,
//! `sample`, `zip_with_index`, `sort_by_key`, `keys_count` and friends.
//! They compose from the core primitives where possible (which keeps the
//! lineage plan small and the engine untouched) and otherwise follow the
//! same type-erased narrow/shuffle node patterns as `dataset.rs`.

use crate::block::{Block, Data};
use crate::dataset::Dataset;
use crate::plan::{Compute, CostSpec, Dep, RddNode};
use blaze_common::rng::{derive_seed, seeded};
use rand::Rng;
use std::hash::Hash;
use std::sync::Arc;

impl<T: Data> Dataset<T> {
    /// Concatenates two datasets.
    ///
    /// Both inputs are repartitioned to `num_partitions` via a keyed
    /// round-robin pass; element order across the union is unspecified
    /// (as in Spark).
    pub fn union(&self, other: &Dataset<T>, num_partitions: usize) -> Dataset<T> {
        let left = self.map_partitions_idx(|p, part| {
            part.iter().enumerate().map(|(i, x)| ((p + 2 * i) as u64, x.clone())).collect()
        });
        let right = other.map_partitions_idx(|p, part| {
            part.iter().enumerate().map(|(i, x)| ((p + 2 * i + 1) as u64, x.clone())).collect()
        });
        // Repartition both sides by the synthetic key, then merge.
        let l = left.partition_by(num_partitions);
        let r = right.partition_by(num_partitions);
        l.zip_partitions(&r, |a: &[(u64, T)], b: &[(u64, T)]| {
            a.iter().chain(b).map(|(_, x)| x.clone()).collect::<Vec<T>>()
        })
        .named("union")
    }

    /// Reduces the partition count by concatenating ranges of partitions
    /// (a shuffle-free `coalesce` is not expressible in our planner, so
    /// this performs one round-robin shuffle like `repartition`).
    pub fn coalesce(&self, num_partitions: usize) -> Dataset<T> {
        let keyed = self.map_partitions_idx(|p, part| {
            part.iter().enumerate().map(|(i, x)| ((p + i) as u64, x.clone())).collect()
        });
        keyed.partition_by(num_partitions).map(|(_, x)| x.clone()).named("coalesce")
    }

    /// Bernoulli-samples elements with probability `fraction`,
    /// deterministically in `seed`.
    pub fn sample(&self, fraction: f64, seed: u64) -> Dataset<T> {
        let fraction = fraction.clamp(0.0, 1.0);
        self.map_partitions_idx(move |p, part| {
            let mut rng = seeded(derive_seed(seed, p as u64));
            part.iter().filter(|_| rng.gen::<f64>() < fraction).cloned().collect()
        })
        .named("sample")
    }

    /// Pairs every element with a unique, dense index.
    ///
    /// Like Spark's `zipWithIndex`, this needs the sizes of all partitions
    /// before assigning offsets, which costs one extra job (a count pass).
    pub fn zip_with_index(&self) -> blaze_common::Result<Dataset<(T, u64)>> {
        let counts: Vec<u64> = self
            .map_partitions(|part| vec![part.len() as u64])
            .named("zip_with_index_counts")
            .collect()?;
        let offsets: Arc<Vec<u64>> = Arc::new(
            counts
                .iter()
                .scan(0u64, |acc, &c| {
                    let off = *acc;
                    *acc += c;
                    Some(off)
                })
                .collect(),
        );
        Ok(self
            .map_partitions_idx(move |p, part| {
                let base = offsets.get(p).copied().unwrap_or(0);
                part.iter().enumerate().map(|(i, x)| (x.clone(), base + i as u64)).collect()
            })
            .named("zip_with_index"))
    }

    /// Returns the first `n` elements under the given total order,
    /// computed with per-partition top-n pruning before the driver merge.
    pub fn top_by<F>(&self, n: usize, cmp: F) -> blaze_common::Result<Vec<T>>
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Send + Sync + Clone + 'static,
    {
        let per_part = cmp.clone();
        let partials = self
            .map_partitions(move |part| {
                let mut v: Vec<T> = part.to_vec();
                v.sort_by(|a, b| per_part(a, b));
                v.truncate(n);
                v
            })
            .named("top_partials");
        let mut all = partials.collect()?;
        all.sort_by(|a, b| cmp(a, b));
        all.truncate(n);
        Ok(all)
    }
}

impl<K, V> Dataset<(K, V)>
where
    K: Data + Hash + Eq + Ord,
    V: Data,
{
    /// Globally sorts the dataset by key.
    ///
    /// Implemented like Spark's `sortByKey`: a sampling job first picks
    /// *global* split points (Spark's `RangePartitioner` does the same
    /// hidden job), then a range shuffle routes keys and each partition
    /// sorts locally — partition `i` holds keys entirely below partition
    /// `i + 1`, so concatenating partitions yields the global order.
    ///
    /// # Errors
    ///
    /// Propagates failures of the sampling job.
    pub fn sort_by_key(&self, num_partitions: usize) -> blaze_common::Result<Dataset<(K, V)>> {
        // The sampling pass: global split points from a deterministic
        // sample of the keys.
        let mut sample: Vec<K> = self.keys().sample(0.1, 0x5EED).named("sort_sample").collect()?;
        if sample.is_empty() {
            sample = self.keys().take(4096)?;
        }
        sample.sort();
        let splits: Arc<Vec<K>> = Arc::new(
            (1..num_partitions)
                .map(|i| sample[(i * sample.len() / num_partitions).min(sample.len() - 1)].clone())
                .collect(),
        );

        let parent = self.id();
        let name = "sort_by_key".to_string();
        let map_splits = Arc::clone(&splits);
        let map_side: crate::plan::MapSideFn = Arc::new(move |block, n| {
            let pairs = block.as_slice::<(K, V)>("sort_by_key map-side")?;
            let mut buckets: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
            for kv in pairs {
                let b = map_splits.partition_point(|s| s <= &kv.0).min(n - 1);
                buckets[b].push(kv.clone());
            }
            Ok(buckets.into_iter().map(Block::from_vec).collect())
        });
        let agg: crate::plan::ShuffleAggFn = Arc::new(move |p, per_dep| {
            let ctx = format!("sort_by_key agg@{p}");
            let mut out: Vec<(K, V)> = Vec::new();
            for block in &per_dep[0] {
                out.extend_from_slice(block.as_slice::<(K, V)>(&ctx)?);
            }
            out.sort_by(|a, b| a.0.cmp(&b.0));
            Ok(Block::from_vec(out))
        });
        let id = self.context().add_node(|id| RddNode {
            id,
            name,
            num_partitions,
            deps: vec![Dep::Shuffle { parent, map_side }],
            compute: Compute::ShuffleAgg(agg),
            cost: CostSpec::SHUFFLE_AGG,
            ser_factor: 1.0,
            partitioner: None, // Range-partitioned, not hash-partitioned.
            cache_annotated: false,
            unpersist_requested: false,
        });
        Ok(Dataset::new(self.context().clone(), id, num_partitions))
    }
}

#[cfg(test)]
mod tests {
    use crate::context::Context;
    use crate::runner::LocalRunner;

    fn ctx() -> Context {
        Context::new(LocalRunner::new())
    }

    #[test]
    fn union_keeps_every_element() {
        let ctx = ctx();
        let a = ctx.parallelize((0..50u64).collect::<Vec<_>>(), 3);
        let b = ctx.parallelize((50..80u64).collect::<Vec<_>>(), 2);
        let mut out = a.union(&b, 4).collect().unwrap();
        out.sort();
        assert_eq!(out, (0..80).collect::<Vec<u64>>());
    }

    #[test]
    fn coalesce_changes_partitions_not_content() {
        let ctx = ctx();
        let a = ctx.parallelize((0..100u64).collect::<Vec<_>>(), 8);
        let c = a.coalesce(2);
        assert_eq!(c.num_partitions(), 2);
        let mut out = c.collect().unwrap();
        out.sort();
        assert_eq!(out, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn sample_is_deterministic_and_proportional() {
        let ctx = ctx();
        let a = ctx.parallelize((0..10_000u64).collect::<Vec<_>>(), 4);
        let s1 = a.sample(0.1, 7).collect().unwrap();
        let s2 = a.sample(0.1, 7).collect().unwrap();
        assert_eq!(s1, s2);
        assert!(s1.len() > 700 && s1.len() < 1_300, "got {}", s1.len());
        let none = a.sample(0.0, 7).collect().unwrap();
        assert!(none.is_empty());
        let all = a.sample(1.0, 7).collect().unwrap();
        assert_eq!(all.len(), 10_000);
    }

    #[test]
    fn zip_with_index_is_dense_and_unique() {
        let ctx = ctx();
        let a = ctx.parallelize((100..200u64).collect::<Vec<_>>(), 7);
        let indexed = a.zip_with_index().unwrap();
        let out = indexed.collect().unwrap();
        let mut indices: Vec<u64> = out.iter().map(|(_, i)| *i).collect();
        indices.sort();
        assert_eq!(indices, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn sort_by_key_orders_globally() {
        let ctx = ctx();
        let data: Vec<(u64, u64)> = (0..500u64).map(|i| ((i * 7919) % 1000, i)).collect();
        let sorted = ctx.parallelize(data.clone(), 5).sort_by_key(4).unwrap();
        let out = sorted.collect().unwrap();
        // collect() concatenates partitions in order; range partitioning
        // makes the concatenation globally sorted.
        let keys: Vec<u64> = out.iter().map(|(k, _)| *k).collect();
        let mut expected = keys.clone();
        expected.sort();
        assert_eq!(keys, expected);
        assert_eq!(out.len(), data.len());
    }

    #[test]
    fn sort_by_key_balances_partitions_reasonably() {
        let ctx = ctx();
        let data: Vec<(u64, u64)> = (0..4_000u64).map(|i| (i, i)).collect();
        let sorted = ctx.parallelize(data, 4).sort_by_key(4).unwrap();
        // Inspect per-partition sizes via map_partitions.
        let sizes = sorted.map_partitions(|part| vec![part.len() as u64]).collect().unwrap();
        assert_eq!(sizes.iter().sum::<u64>(), 4_000);
        assert!(sizes.iter().all(|&s| s > 400), "unbalanced: {sizes:?}");
    }

    #[test]
    fn top_by_returns_global_extremes() {
        let ctx = ctx();
        let a = ctx.parallelize((0..1_000u64).collect::<Vec<_>>(), 8);
        let top = a.top_by(5, |x, y| y.cmp(x)).unwrap();
        assert_eq!(top, vec![999, 998, 997, 996, 995]);
        let bottom = a.top_by(3, |x, y| x.cmp(y)).unwrap();
        assert_eq!(bottom, vec![0, 1, 2]);
    }
}
