//! Deterministic synthetic graph generation.
//!
//! Stands in for the SparkBench generator the paper uses for PageRank and
//! ConnectedComponents (25 M vertices, §7.1), scaled down. The generator
//! produces a power-law-ish in-degree distribution (destination sampling is
//! biased toward low vertex ids by multiplying uniforms), which creates the
//! skewed partition sizes that drive the paper's Fig. 3 observation, plus a
//! deterministic ring so every vertex has at least one in- and out-edge
//! (no rank mass is lost to dangling vertices).
//!
//! Generation is per-partition and purely a function of `(seed, partition)`,
//! so lineage recomputation regenerates identical data.

use crate::types::Edge;
use blaze_common::fxhash::hash_one;
use blaze_common::rng::{derive_seed, seeded};
use blaze_dataflow::{Context, Dataset};
use rand::Rng;

/// Configuration of the synthetic graph.
#[derive(Debug, Clone, Copy)]
pub struct GraphGenConfig {
    /// Number of vertices.
    pub vertices: u64,
    /// Average out-degree (extra edges on top of the ring).
    pub avg_degree: u32,
    /// Skew exponent for destination sampling; higher = more skew toward
    /// low-id vertices (0 = uniform).
    pub skew: u32,
    /// Number of partitions of the edge dataset.
    pub partitions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        Self { vertices: 10_000, avg_degree: 8, skew: 2, partitions: 8, seed: 42 }
    }
}

/// Deterministic heavy-tailed out-degree of a vertex (Pareto-like with
/// infinite variance), so that hash-partitioned adjacency lists end up with
/// visibly skewed partition sizes — the root of the paper's Fig. 3
/// imbalance. Independent of the partition layout, so recomputation always
/// regenerates identical data.
pub fn out_degree(cfg: &GraphGenConfig, v: u64) -> u32 {
    let u = (hash_one(&(cfg.seed, v)) % 1_000_000) as f64 / 1_000_000.0 + 1e-6;
    let factor = u.powf(-0.7);
    let cap = (cfg.vertices / 20).max(4) as f64;
    (cfg.avg_degree as f64 * factor).min(cap).max(1.0) as u32
}

/// Generates the edges of partition `part` directly (shared by the dataset
/// builder and tests).
pub fn partition_edges(cfg: &GraphGenConfig, part: usize) -> Vec<Edge> {
    let n = cfg.vertices;
    let parts = cfg.partitions as u64;
    let lo = part as u64 * n / parts;
    let hi = (part as u64 + 1) * n / parts;
    let mut rng = seeded(derive_seed(cfg.seed, part as u64));
    let mut edges = Vec::new();
    for v in lo..hi {
        // Ring edge: guarantees every vertex has in/out degree >= 1.
        edges.push(Edge::new(v, (v + 1) % n));
        for _ in 0..out_degree(cfg, v) {
            // Multiplying `skew` uniforms biases destinations toward 0,
            // yielding a heavy-tailed in-degree distribution.
            let mut frac: f64 = rng.gen();
            for _ in 0..cfg.skew {
                frac *= rng.gen::<f64>();
            }
            let dst = (frac * n as f64) as u64 % n;
            if dst != v {
                edges.push(Edge::new(v, dst));
            }
        }
    }
    edges
}

/// Builds the edge dataset of the synthetic graph.
pub fn edges(ctx: &Context, cfg: &GraphGenConfig) -> Dataset<Edge> {
    let cfg = *cfg;
    ctx.generate(cfg.partitions, move |p| partition_edges(&cfg, p)).named("gen_edges")
}

/// Scales a configuration down to a "< 1 MB" sample for the
/// dependency-extraction phase (§5.1 ①).
pub fn sample_config(cfg: &GraphGenConfig) -> GraphGenConfig {
    GraphGenConfig { vertices: cfg.vertices.clamp(16, 512), ..*cfg }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::VertexId;
    use blaze_common::fxhash::FxHashMap;
    use blaze_dataflow::runner::LocalRunner;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GraphGenConfig::default();
        assert_eq!(partition_edges(&cfg, 3), partition_edges(&cfg, 3));
        let other = GraphGenConfig { seed: 43, ..cfg };
        assert_ne!(partition_edges(&cfg, 3), partition_edges(&other, 3));
    }

    #[test]
    fn every_vertex_has_out_and_in_edges() {
        let cfg = GraphGenConfig { vertices: 500, partitions: 4, ..Default::default() };
        let mut out = vec![0u32; 500];
        let mut inc = vec![0u32; 500];
        for p in 0..cfg.partitions {
            for e in partition_edges(&cfg, p) {
                out[e.src as usize] += 1;
                inc[e.dst as usize] += 1;
            }
        }
        assert!(out.iter().all(|&d| d >= 1));
        assert!(inc.iter().all(|&d| d >= 1));
    }

    #[test]
    fn in_degree_is_skewed_toward_low_ids() {
        let cfg = GraphGenConfig { vertices: 2_000, avg_degree: 10, ..Default::default() };
        let mut inc: FxHashMap<VertexId, u64> = FxHashMap::default();
        for p in 0..cfg.partitions {
            for e in partition_edges(&cfg, p) {
                *inc.entry(e.dst).or_insert(0) += 1;
            }
        }
        let low: u64 = (0..200).map(|v| inc.get(&v).copied().unwrap_or(0)).sum();
        let high: u64 = (1800..2000).map(|v| inc.get(&v).copied().unwrap_or(0)).sum();
        assert!(low > high * 5, "expected heavy head: low-ids {low} vs high-ids {high}");
    }

    #[test]
    fn dataset_covers_all_partitions() {
        let ctx = Context::new(LocalRunner::new());
        let cfg = GraphGenConfig { vertices: 300, partitions: 3, ..Default::default() };
        let ds = edges(&ctx, &cfg);
        let all = ds.collect().unwrap();
        let direct: usize = (0..3).map(|p| partition_edges(&cfg, p).len()).sum();
        assert_eq!(all.len(), direct);
    }

    #[test]
    fn sample_config_is_tiny() {
        let cfg = GraphGenConfig { vertices: 1_000_000, ..Default::default() };
        let s = sample_config(&cfg);
        assert!(s.vertices <= 512);
        assert_eq!(s.partitions, cfg.partitions);
    }
}
