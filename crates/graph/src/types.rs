//! Graph element types.

use blaze_common::sizeof::SizeOf;

/// A vertex identifier.
pub type VertexId = u64;

/// A directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
}

impl Edge {
    /// Creates an edge from `src` to `dst`.
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Self { src, dst }
    }

    /// The edge as a key-value pair keyed by source.
    pub fn by_src(&self) -> (VertexId, VertexId) {
        (self.src, self.dst)
    }
}

impl SizeOf for Edge {
    fn deep_size(&self) -> usize {
        std::mem::size_of::<Edge>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_accessors() {
        let e = Edge::new(3, 7);
        assert_eq!(e.by_src(), (3, 7));
        assert_eq!(e.deep_size(), 16);
    }
}
