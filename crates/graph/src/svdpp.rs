//! SVD++-style matrix factorization on the user-item bipartite graph.
//!
//! Reproduces the paper's recommendation workload (§7.1: 15 M users × 50
//! items of ratings, scaled down): latent user/item factors with the SVD++
//! implicit-feedback term (`p_u + |N(u)|^{-1/2} Σ_{j∈N(u)} y_j`), trained by
//! alternating message passing with batch gradient steps — the same
//! join-heavy, nested-vector-shuffling structure that makes SVD++ the most
//! serialization-bound workload in the paper (its cached factor datasets
//! carry a high serialization factor, §7.2).

use blaze_common::error::Result;
use blaze_common::rng::{derive_seed, seeded};
use blaze_common::sizeof::SizeOf;
use blaze_dataflow::{Context, Dataset};
use rand::Rng;

/// One observed rating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rating {
    /// User id.
    pub user: u32,
    /// Item id.
    pub item: u32,
    /// Observed rating value.
    pub rating: f32,
}

impl SizeOf for Rating {
    fn deep_size(&self) -> usize {
        std::mem::size_of::<Rating>()
    }
}

/// A latent factor vector.
pub type Factor = Vec<f64>;

/// Per-item state: the item factor `q_i` and implicit-feedback factor `y_i`.
type ItemFactors = Dataset<(u32, (Factor, Factor))>;

/// The serialization factor applied to nested factor datasets (the paper
/// measures 2.5–6.4x for SVD++'s data types, §7.2).
pub const FACTOR_SER: f64 = 4.0;

/// SVD++ configuration.
#[derive(Debug, Clone, Copy)]
pub struct SvdppConfig {
    /// Number of users.
    pub users: u32,
    /// Number of items.
    pub items: u32,
    /// Ratings per user.
    pub ratings_per_user: u32,
    /// Latent dimension.
    pub rank: usize,
    /// Training iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization.
    pub lambda: f64,
    /// Partitions.
    pub partitions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SvdppConfig {
    fn default() -> Self {
        Self {
            users: 2_000,
            items: 100,
            ratings_per_user: 8,
            rank: 8,
            iterations: 8,
            learning_rate: 0.12,
            lambda: 0.02,
            partitions: 8,
            seed: 77,
        }
    }
}

/// SVD++ output.
#[derive(Debug)]
pub struct SvdppResult {
    /// Root-mean-square training error per iteration.
    pub rmse_per_iteration: Vec<f64>,
}

fn planted_factor(seed: u64, id: u64, rank: usize) -> Factor {
    let mut rng = seeded(derive_seed(seed, id));
    (0..rank).map(|_| rng.gen::<f64>() - 0.5).collect()
}

/// Generates the ratings of one partition (users are range-partitioned).
pub fn partition_ratings(cfg: &SvdppConfig, part: usize) -> Vec<Rating> {
    let parts = cfg.partitions as u32;
    let lo = part as u32 * cfg.users / parts;
    let hi = (part as u32 + 1) * cfg.users / parts;
    let mut rng = seeded(derive_seed(cfg.seed, 1000 + part as u64));
    let mut out = Vec::new();
    for u in lo..hi {
        let pu = planted_factor(cfg.seed, u as u64, cfg.rank);
        for _ in 0..cfg.ratings_per_user {
            let i = rng.gen_range(0..cfg.items);
            let qi = planted_factor(cfg.seed ^ 0xABCD, i as u64, cfg.rank);
            let dot: f64 = pu.iter().zip(&qi).map(|(a, b)| a * b).sum();
            let noise: f64 = (rng.gen::<f64>() - 0.5) * 0.05;
            out.push(Rating { user: u, item: i, rating: (dot + noise) as f32 });
        }
    }
    out
}

/// Runs SVD++ training; one job (the loss action) per iteration.
pub fn run(ctx: &Context, cfg: &SvdppConfig) -> Result<SvdppResult> {
    let parts = cfg.partitions;
    let rank = cfg.rank;
    let lr = cfg.learning_rate;
    let lambda = cfg.lambda;
    let gen_cfg = *cfg;

    let ratings: Dataset<Rating> =
        ctx.generate(parts, move |p| partition_ratings(&gen_cfg, p)).named("gen_ratings");

    // Ratings grouped by item (to attach item factors) — built once, cached.
    let by_item: Dataset<(u32, Vec<(u32, f32)>)> =
        ratings.map(|r| (r.item, (r.user, r.rating))).group_by_key(parts).named("ratings_by_item");
    by_item.cache();

    // Initial factors: small deterministic pseudo-random vectors.
    let seed = cfg.seed;
    let users = cfg.users;
    let items = cfg.items;
    let mut user_f: Dataset<(u32, Factor)> = ctx
        .generate(parts, move |p| {
            let pn = parts as u32;
            let lo = p as u32 * users / pn;
            let hi = (p as u32 + 1) * users / pn;
            (lo..hi)
                .map(|u| {
                    let f = planted_factor(seed ^ 0x1111, u as u64, rank)
                        .iter()
                        .map(|x| x * 0.5)
                        .collect::<Factor>();
                    (u, f)
                })
                .collect()
        })
        .named("user_factors_0")
        .with_ser_factor(FACTOR_SER)
        .partition_by(parts);
    let mut item_f: ItemFactors = ctx
        .generate(parts, move |p| {
            let pn = parts as u32;
            let lo = p as u32 * items / pn;
            let hi = (p as u32 + 1) * items / pn;
            (lo..hi)
                .map(|i| {
                    let q = planted_factor(seed ^ 0x2222, i as u64, rank)
                        .iter()
                        .map(|x| x * 0.5)
                        .collect::<Factor>();
                    let y = vec![0.0; rank];
                    (i, (q, y))
                })
                .collect()
        })
        .named("item_factors_0")
        .with_ser_factor(FACTOR_SER)
        .partition_by(parts);
    user_f.cache();
    item_f.cache();

    let mut prev: Option<(Dataset<(u32, Factor)>, ItemFactors)> = None;
    let mut rmse_per_iteration = Vec::with_capacity(cfg.iterations);

    for _ in 0..cfg.iterations {
        // Item -> user messages: every rating annotated with (q_i, y_i).
        let raw_msgs = item_f
            .join(&by_item, parts)
            .flat_map(|(item, ((q, y), ratings))| {
                ratings
                    .iter()
                    .map(|&(user, r)| (user, (*item, r, q.clone(), y.clone())))
                    .collect::<Vec<_>>()
            })
            .named("item_to_user_msgs")
            .with_ser_factor(FACTOR_SER);
        // GraphX materializes and caches the per-iteration message graph
        // even though it is consumed exactly once by the following shuffle
        // (the unnecessary-caching pattern of §3.1).
        raw_msgs.cache();
        let user_msgs = raw_msgs.group_by_key(parts).named("user_msgs").with_ser_factor(FACTOR_SER);
        user_msgs.cache();

        // Per-user work: gradient step on p_u, per-item feedback, error.
        let user_work = user_f
            .join(&user_msgs, parts)
            .map_values(move |(p_u, msgs)| {
                let n = msgs.len().max(1) as f64;
                let norm = 1.0 / n.sqrt();
                // Implicit term: |N|^{-1/2} sum of y over rated items.
                let mut implicit = vec![0.0; rank];
                for (_, _, _, y) in msgs {
                    for (acc, v) in implicit.iter_mut().zip(y) {
                        *acc += v * norm;
                    }
                }
                let p_eff: Factor = p_u.iter().zip(&implicit).map(|(a, b)| a + b).collect();
                let mut grad_p = vec![0.0; rank];
                let mut sq_err = 0.0;
                let mut item_updates: Vec<(u32, (Factor, Factor, f64))> = Vec::new();
                for (item, r, q, _) in msgs {
                    let pred: f64 = p_eff.iter().zip(q).map(|(a, b)| a * b).sum();
                    let err = *r as f64 - pred;
                    sq_err += err * err;
                    for (g, qv) in grad_p.iter_mut().zip(q) {
                        *g += err * qv;
                    }
                    // dq = err * p_eff; dy = err * norm * q.
                    let dq: Factor = p_eff.iter().map(|v| err * v).collect();
                    let dy: Factor = q.iter().map(|v| err * norm * v).collect();
                    item_updates.push((*item, (dq, dy, err * err)));
                }
                let new_p: Factor =
                    p_u.iter().zip(&grad_p).map(|(p, g)| p + lr * (g - lambda * p)).collect();
                (new_p, item_updates, sq_err, msgs.len() as u64)
            })
            .named("user_work")
            .with_ser_factor(FACTOR_SER);
        user_work.cache();

        // Loss action: one job per iteration.
        let (total_sq, count) = user_work
            .map(|(_, (_, _, sq, cnt))| (*sq, *cnt))
            .reduce(|a, b| (a.0 + b.0, a.1 + b.1))?
            .unwrap_or((0.0, 0));
        rmse_per_iteration.push((total_sq / count.max(1) as f64).sqrt());

        let new_user_f = user_work
            .map_values(|(p, _, _, _)| p.clone())
            .named("user_factors")
            .with_ser_factor(FACTOR_SER);
        new_user_f.cache();

        let item_grads = user_work
            .flat_map(|(_, (_, updates, _, _))| updates.clone())
            .reduce_by_key(parts, |a, b| {
                let dq: Factor = a.0.iter().zip(&b.0).map(|(x, y)| x + y).collect();
                let dy: Factor = a.1.iter().zip(&b.1).map(|(x, y)| x + y).collect();
                (dq, dy, a.2 + b.2)
            })
            .named("item_grads");
        let new_item_f = item_f
            .left_outer_join(&item_grads, parts)
            .map_values(move |((q, y), grads)| match grads {
                Some((dq, dy, _)) => {
                    let nq: Factor =
                        q.iter().zip(dq).map(|(qv, g)| qv + lr * (g - lambda * qv)).collect();
                    let ny: Factor =
                        y.iter().zip(dy).map(|(yv, g)| yv + lr * (g - lambda * yv)).collect();
                    (nq, ny)
                }
                None => (q.clone(), y.clone()),
            })
            .named("item_factors")
            .with_ser_factor(FACTOR_SER);
        new_item_f.cache();

        if let Some((old_u, old_i)) = prev.take() {
            old_u.unpersist();
            old_i.unpersist();
        }
        prev = Some((user_f, item_f));
        user_f = new_user_f;
        item_f = new_item_f;
    }

    // Training is over: release the factor state. The final iteration's
    // factor updates are never read by another job, so their cache
    // annotations would otherwise pin store space for nothing (the static
    // auditor reports exactly this as BA102).
    if let Some((old_u, old_i)) = prev.take() {
        old_u.unpersist();
        old_i.unpersist();
    }
    user_f.unpersist();
    item_f.unpersist();

    Ok(SvdppResult { rmse_per_iteration })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaze_dataflow::runner::LocalRunner;

    fn small_cfg() -> SvdppConfig {
        SvdppConfig {
            users: 200,
            items: 30,
            ratings_per_user: 6,
            iterations: 6,
            partitions: 4,
            ..Default::default()
        }
    }

    #[test]
    fn training_error_decreases() {
        let ctx = Context::new(LocalRunner::new());
        let result = run(&ctx, &small_cfg()).unwrap();
        let rmse = &result.rmse_per_iteration;
        assert_eq!(rmse.len(), 6);
        assert!(rmse.last().unwrap() < &(rmse[0] * 0.9), "RMSE should drop by >10%: {rmse:?}");
        assert!(rmse.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn rating_generation_is_deterministic_and_bounded() {
        let cfg = small_cfg();
        let a = partition_ratings(&cfg, 1);
        let b = partition_ratings(&cfg, 1);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|r| r.user < cfg.users && r.item < cfg.items));
    }

    #[test]
    fn one_loss_job_per_iteration_plus_setup() {
        let ctx = Context::new(LocalRunner::new());
        let cfg = small_cfg();
        let _ = run(&ctx, &cfg).unwrap();
        // One reduce (which wraps collect) job per iteration.
        assert_eq!(ctx.jobs_submitted() as usize, cfg.iterations);
    }
}
