//! ConnectedComponents: Pregel min-label propagation.
//!
//! Every vertex starts labelled with its own id; labels flow along edges in
//! both directions and each vertex keeps the minimum it has seen — exactly
//! GraphX's `ConnectedComponents` (§7.1 uses the same input graph as
//! PageRank).

use crate::datagen::{edges as gen_edges, GraphGenConfig};
use crate::pregel::run_pregel;
use crate::types::VertexId;
use blaze_common::error::Result;
use blaze_dataflow::Context;

/// ConnectedComponents configuration.
#[derive(Debug, Clone, Copy)]
pub struct CcConfig {
    /// The input graph.
    pub graph: GraphGenConfig,
    /// Superstep budget (label propagation converges in O(diameter)).
    pub max_supersteps: usize,
}

impl Default for CcConfig {
    fn default() -> Self {
        Self { graph: GraphGenConfig::default(), max_supersteps: 30 }
    }
}

/// ConnectedComponents output.
#[derive(Debug)]
pub struct CcResult {
    /// (vertex, component-label) pairs.
    pub labels: Vec<(VertexId, VertexId)>,
    /// Supersteps executed.
    pub supersteps: usize,
}

impl CcResult {
    /// Number of distinct components.
    pub fn num_components(&self) -> usize {
        let mut labels: Vec<VertexId> = self.labels.iter().map(|(_, l)| *l).collect();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }
}

/// Runs ConnectedComponents on the given context.
pub fn run(ctx: &Context, cfg: &CcConfig) -> Result<CcResult> {
    let parts = cfg.graph.partitions;
    let directed = gen_edges(ctx, &cfg.graph).map(|e| e.by_src());
    // Undirected semantics: propagate labels both ways.
    let both = directed.flat_map(|&(s, d)| [(s, d), (d, s)]).named("edges_undirected");
    let vertices = both.map(|&(s, _)| (s, s)).distinct(parts).named("init_labels");

    let result = run_pregel(
        ctx,
        vertices,
        both,
        parts,
        cfg.max_supersteps,
        |label, _dst| Some(*label),
        |a, b| *a.min(b),
        |label, msg| {
            if msg < label {
                (*msg, true)
            } else {
                (*label, false)
            }
        },
    )?;
    Ok(CcResult { labels: result.vertices, supersteps: result.supersteps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaze_dataflow::runner::LocalRunner;

    #[test]
    fn ring_graph_is_one_component() {
        let cfg = CcConfig {
            graph: GraphGenConfig {
                vertices: 64,
                avg_degree: 2,
                partitions: 4,
                ..Default::default()
            },
            max_supersteps: 80,
        };
        let ctx = Context::new(LocalRunner::new());
        let result = run(&ctx, &cfg).unwrap();
        // The generator's ring connects everything.
        assert_eq!(result.num_components(), 1);
        assert_eq!(result.labels.len(), 64);
        assert!(result.labels.iter().all(|(_, l)| *l == 0));
    }

    #[test]
    fn disjoint_cliques_are_separate_components() {
        // Hand-built graph: {0,1,2} and {10,11}.
        let ctx = Context::new(LocalRunner::new());
        let edges = ctx.parallelize(vec![(0u64, 1u64), (1, 2), (10, 11)], 2);
        let both = edges.flat_map(|&(s, d)| [(s, d), (d, s)]);
        let vertices = both.map(|&(s, _)| (s, s)).distinct(2);
        let result = run_pregel(
            &ctx,
            vertices,
            both,
            2,
            16,
            |label, _| Some(*label),
            |a, b| *a.min(b),
            |label, msg| if msg < label { (*msg, true) } else { (*label, false) },
        )
        .unwrap();
        let mut labels = result.vertices;
        labels.sort_by_key(|(v, _)| *v);
        assert_eq!(labels, vec![(0, 0), (1, 0), (2, 0), (10, 10), (11, 10)]);
    }
}
