//! A GraphX-style property graph on top of the dataset API.
//!
//! [`Graph`] pairs a vertex dataset (id → attribute) with an edge dataset,
//! both hash-partitioned for co-partitioned joins. The algorithms in this
//! crate ([`crate::pagerank`], [`crate::cc`], [`crate::svdpp`]) are written
//! directly against datasets for figure fidelity; this wrapper is the
//! user-facing entry point for building new graph computations.

use crate::types::{Edge, VertexId};
use blaze_common::error::Result;
use blaze_dataflow::{Context, Data, Dataset};

/// A property graph: vertices with attributes of type `V`, plus edges.
pub struct Graph<V: Data> {
    vertices: Dataset<(VertexId, V)>,
    edges: Dataset<Edge>,
    partitions: usize,
}

impl<V: Data> Clone for Graph<V> {
    fn clone(&self) -> Self {
        Self {
            vertices: self.vertices.clone(),
            edges: self.edges.clone(),
            partitions: self.partitions,
        }
    }
}

impl<V: Data> Graph<V> {
    /// Builds a graph from an edge dataset, giving every endpoint vertex the
    /// `default` attribute (GraphX's `Graph.fromEdges`).
    pub fn from_edges(edges: Dataset<Edge>, default: V, partitions: usize) -> Graph<V> {
        let vertices = edges
            .flat_map(|e| [e.src, e.dst])
            .distinct(partitions)
            .map(move |&v| (v, default.clone()))
            .named("graph_vertices")
            .partition_by(partitions);
        let edges = edges
            .map(|e| (e.src, e.dst))
            .partition_by(partitions)
            .map(|&(src, dst)| Edge::new(src, dst))
            .named("graph_edges");
        Graph { vertices, edges, partitions }
    }

    /// Builds a graph from explicit vertex and edge datasets.
    pub fn new(
        vertices: Dataset<(VertexId, V)>,
        edges: Dataset<Edge>,
        partitions: usize,
    ) -> Graph<V> {
        Graph { vertices: vertices.partition_by(partitions), edges, partitions }
    }

    /// The vertex dataset.
    pub fn vertices(&self) -> &Dataset<(VertexId, V)> {
        &self.vertices
    }

    /// The edge dataset.
    pub fn edges(&self) -> &Dataset<Edge> {
        &self.edges
    }

    /// The partition count used for keyed operations.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Number of vertices (an action).
    pub fn num_vertices(&self) -> Result<u64> {
        self.vertices.count()
    }

    /// Number of edges (an action).
    pub fn num_edges(&self) -> Result<u64> {
        self.edges.count()
    }

    /// Transforms every vertex attribute.
    pub fn map_vertices<W: Data>(
        &self,
        f: impl Fn(VertexId, &V) -> W + Send + Sync + 'static,
    ) -> Graph<W> {
        Graph {
            vertices: self
                .vertices
                .map(move |(id, v)| (*id, f(*id, v)))
                .named("map_vertices")
                .assume_partitioned(self.partitions),
            edges: self.edges.clone(),
            partitions: self.partitions,
        }
    }

    /// Reverses every edge.
    pub fn reverse(&self) -> Graph<V> {
        Graph {
            vertices: self.vertices.clone(),
            edges: self.edges.map(|e| Edge::new(e.dst, e.src)).named("reverse"),
            partitions: self.partitions,
        }
    }

    /// Keeps only the edges satisfying `pred` (vertices are untouched,
    /// like GraphX's `subgraph` with a vertex predicate of `true`).
    pub fn filter_edges(&self, pred: impl Fn(&Edge) -> bool + Send + Sync + 'static) -> Graph<V> {
        Graph {
            vertices: self.vertices.clone(),
            edges: self.edges.filter(move |e| pred(e)).named("filter_edges"),
            partitions: self.partitions,
        }
    }

    /// Out-degree per vertex (vertices with no out-edges are absent,
    /// matching GraphX's `outDegrees`).
    pub fn out_degrees(&self) -> Dataset<(VertexId, u32)> {
        self.edges
            .map(|e| (e.src, 1u32))
            .reduce_by_key(self.partitions, |a, b| a + b)
            .named("out_degrees")
    }

    /// In-degree per vertex (vertices with no in-edges are absent).
    pub fn in_degrees(&self) -> Dataset<(VertexId, u32)> {
        self.edges
            .map(|e| (e.dst, 1u32))
            .reduce_by_key(self.partitions, |a, b| a + b)
            .named("in_degrees")
    }

    /// Joins extra per-vertex data into the attributes (ids without a match
    /// keep their attribute via the `merge` function receiving `None`).
    pub fn join_vertices<U: Data, W: Data>(
        &self,
        other: &Dataset<(VertexId, U)>,
        merge: impl Fn(&V, Option<&U>) -> W + Send + Sync + 'static,
    ) -> Graph<W> {
        let joined = self
            .vertices
            .left_outer_join(other, self.partitions)
            .map_values(move |(v, u)| merge(v, u.as_ref()))
            .named("join_vertices");
        Graph { vertices: joined, edges: self.edges.clone(), partitions: self.partitions }
    }

    /// The source-attributed triplet view: one record per edge, carrying the
    /// source vertex attribute (the message-routing view Pregel uses).
    pub fn triplets(&self) -> Dataset<(VertexId, (VertexId, V))> {
        self.edges.map(|e| e.by_src()).join(&self.vertices, self.partitions).named("triplets")
    }

    /// Runs a Pregel program over the graph (undirected message flow must be
    /// encoded by the caller by adding reverse edges).
    pub fn pregel<M: Data>(
        &self,
        ctx: &Context,
        max_supersteps: usize,
        send: impl Fn(&V, VertexId) -> Option<M> + Send + Sync + 'static,
        merge: impl Fn(&M, &M) -> M + Send + Sync + 'static,
        apply: impl Fn(&V, &M) -> (V, bool) + Send + Sync + 'static,
    ) -> Result<crate::pregel::PregelResult<V>> {
        crate::pregel::run_pregel(
            ctx,
            self.vertices.clone(),
            self.edges.map(|e| e.by_src()),
            self.partitions,
            max_supersteps,
            send,
            merge,
            apply,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaze_dataflow::runner::LocalRunner;

    fn diamond(ctx: &Context) -> Dataset<Edge> {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
        ctx.parallelize(vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(1, 3), Edge::new(2, 3)], 2)
    }

    #[test]
    fn from_edges_derives_all_vertices() {
        let ctx = Context::new(LocalRunner::new());
        let g = Graph::from_edges(diamond(&ctx), 0u32, 2);
        assert_eq!(g.num_vertices().unwrap(), 4);
        assert_eq!(g.num_edges().unwrap(), 4);
        let mut vs = g.vertices().collect().unwrap();
        vs.sort();
        assert_eq!(vs, vec![(0, 0), (1, 0), (2, 0), (3, 0)]);
    }

    #[test]
    fn degrees_are_correct() {
        let ctx = Context::new(LocalRunner::new());
        let g = Graph::from_edges(diamond(&ctx), (), 2);
        let mut outs = g.out_degrees().collect().unwrap();
        outs.sort();
        assert_eq!(outs, vec![(0, 2), (1, 1), (2, 1)]);
        let mut ins = g.in_degrees().collect().unwrap();
        ins.sort();
        assert_eq!(ins, vec![(1, 1), (2, 1), (3, 2)]);
    }

    #[test]
    fn reverse_swaps_degree_views() {
        let ctx = Context::new(LocalRunner::new());
        let g = Graph::from_edges(diamond(&ctx), (), 2);
        let mut rev_outs = g.reverse().out_degrees().collect().unwrap();
        rev_outs.sort();
        let mut ins = g.in_degrees().collect().unwrap();
        ins.sort();
        assert_eq!(rev_outs, ins);
    }

    #[test]
    fn map_and_join_vertices() {
        let ctx = Context::new(LocalRunner::new());
        let g = Graph::from_edges(diamond(&ctx), 1u64, 2);
        let doubled = g.map_vertices(|id, v| id * 10 + v * 2);
        let mut vs = doubled.vertices().collect().unwrap();
        vs.sort();
        assert_eq!(vs, vec![(0, 2), (1, 12), (2, 22), (3, 32)]);

        let extra = ctx.parallelize(vec![(0u64, 100u64), (3, 300)], 2);
        let joined = g.join_vertices(&extra, |v, u| v + u.copied().unwrap_or(0));
        let mut vs = joined.vertices().collect().unwrap();
        vs.sort();
        assert_eq!(vs, vec![(0, 101), (1, 1), (2, 1), (3, 301)]);
    }

    #[test]
    fn filter_edges_prunes() {
        let ctx = Context::new(LocalRunner::new());
        let g = Graph::from_edges(diamond(&ctx), (), 2);
        let pruned = g.filter_edges(|e| e.dst != 3);
        assert_eq!(pruned.num_edges().unwrap(), 2);
        assert_eq!(pruned.num_vertices().unwrap(), 4, "vertices are kept");
    }

    #[test]
    fn triplets_carry_source_attributes() {
        let ctx = Context::new(LocalRunner::new());
        let g = Graph::from_edges(diamond(&ctx), 7u32, 2);
        let mut ts = g.triplets().collect().unwrap();
        ts.sort();
        assert_eq!(ts.len(), 4);
        assert!(ts.iter().all(|(_, (_, attr))| *attr == 7));
    }

    #[test]
    fn pregel_over_graph_wrapper() {
        // Hop distance from vertex 0 on the diamond.
        let ctx = Context::new(LocalRunner::new());
        let g = Graph::from_edges(diamond(&ctx), u64::MAX, 2).map_vertices(|id, _| {
            if id == 0 {
                0u64
            } else {
                u64::MAX
            }
        });
        let result = g
            .pregel(
                &ctx,
                8,
                |d, _| if *d == u64::MAX { None } else { Some(d + 1) },
                |a, b| *a.min(b),
                |d, m| if m < d { (*m, true) } else { (*d, false) },
            )
            .unwrap();
        let mut vs = result.vertices;
        vs.sort();
        assert_eq!(vs, vec![(0, 0), (1, 1), (2, 1), (3, 2)]);
    }
}
