//! PageRank, in the classic Spark formulation the paper's Fig. 1 shows.
//!
//! Each iteration submits one job: contributions flow along edges
//! (`links.join(ranks).flat_map`), are summed per destination
//! (`reduce_by_key`) and damped. Like the GraphX/Spark reference code, the
//! adjacency dataset is cached once and each iteration's rank dataset is
//! cached, with the *previous* iteration's ranks unpersisted after the new
//! ones materialize (Fig. 1 lines 4 and 9).

use crate::datagen::{edges, GraphGenConfig};
use crate::types::VertexId;
use blaze_common::error::Result;
use blaze_dataflow::{Context, Dataset};

/// PageRank configuration.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// The input graph.
    pub graph: GraphGenConfig,
    /// Number of iterations (the paper uses 10, Fig. 5).
    pub iterations: usize,
    /// Damping factor (0.85 in the reference implementation).
    pub damping: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self { graph: GraphGenConfig::default(), iterations: 10, damping: 0.85 }
    }
}

/// PageRank output.
#[derive(Debug)]
pub struct PageRankResult {
    /// Final (vertex, rank) pairs.
    pub ranks: Vec<(VertexId, f64)>,
}

/// Serialization factor of adjacency-bearing datasets (nested vectors are
/// expensive to serialize in the JVM; cf. §7.2).
const GRAPH_SER: f64 = 2.5;

/// Per-vertex adjacency joined with the current rank (GraphX's `rankGraph`
/// of triplets).
type RankGraph = Dataset<(VertexId, (Vec<VertexId>, f64))>;

/// Runs PageRank on the given context (one job per iteration).
///
/// Mirrors the GraphX structure the paper evaluates: each iteration caches
/// both the small rank vector and the *graph-sized* `rank_graph` (adjacency
/// joined with ranks — GraphX's cached `rankGraph` of triplets), and
/// unpersists the previous iteration's datasets after the new ones
/// materialize (Fig. 1 lines 4 and 9). The bulky per-iteration rank graph is
/// what makes PageRank the paper's most disk-bound workload.
pub fn run(ctx: &Context, cfg: &PageRankConfig) -> Result<PageRankResult> {
    let parts = cfg.graph.partitions;
    let damping = cfg.damping;

    // Adjacency lists, hash-partitioned and cached (Fig. 1 line 4).
    let links: Dataset<(VertexId, Vec<VertexId>)> = edges(ctx, &cfg.graph)
        .map(|e| e.by_src())
        .group_by_key(parts)
        .named("links")
        .with_ser_factor(GRAPH_SER);
    links.cache();
    // The pre-processing job (Fig. 1's Job 0): materialize the graph before
    // the iterations start, like GraphX's eager graph construction.
    links.count()?;

    let mut ranks: Dataset<(VertexId, f64)> = links.map_values(|_| 1.0).named("init_ranks");
    // The graph-with-ranks state chained across iterations (GraphX's
    // `rankGraph`): adjacency + current rank per vertex.
    let mut rank_graph: RankGraph = links
        .map_values(|dests| (dests.clone(), 1.0))
        .named("rank_graph_0")
        .with_ser_factor(GRAPH_SER);
    rank_graph.cache();
    let mut prev: Option<(Dataset<(VertexId, f64)>, RankGraph)> = None;

    for _ in 0..cfg.iterations {
        let contribs = rank_graph
            .flat_map(|(_, (dests, rank))| {
                let share = *rank / dests.len() as f64;
                dests.iter().map(|&d| (d, share)).collect::<Vec<_>>()
            })
            .named("contribs");
        let msgs = contribs.reduce_by_key(parts, |a, b| a + b).named("msg_sums");
        // The vertex update is a *narrow* join on the previous ranks (both
        // co-partitioned), like GraphX's joinVertices — which is why the
        // recomputation lineage grows across iterations (paper Fig. 5).
        let new_ranks = ranks
            .left_outer_join(&msgs, parts)
            .map_values(move |(_, s)| (1.0 - damping) + damping * s.unwrap_or(0.0))
            .named("ranks");
        new_ranks.cache();
        // The next iteration's rank graph (graph-sized, cached, reused once).
        let new_rank_graph =
            links.join(&new_ranks, parts).named("rank_graph").with_ser_factor(GRAPH_SER);
        new_rank_graph.cache();
        // The per-iteration action: triggers one job (Fig. 1's structure).
        new_rank_graph.count()?;
        // Unpersist the now-stale previous iteration (L9).
        if let Some((old_ranks, old_graph)) = prev.take() {
            old_ranks.unpersist();
            old_graph.unpersist();
        }
        prev = Some((ranks, rank_graph));
        ranks = new_ranks;
        rank_graph = new_rank_graph;
    }

    Ok(PageRankResult { ranks: ranks.collect()? })
}

/// A driver-side reference PageRank with identical semantics to [`run`]:
/// ranks are defined over the vertices with out-edges; a vertex receiving no
/// contributions gets `1 - damping`. Used by tests and result verification.
pub fn reference(
    edges: &[(VertexId, VertexId)],
    iterations: usize,
    damping: f64,
) -> Vec<(VertexId, f64)> {
    use blaze_common::fxhash::FxHashMap;
    let mut adj: FxHashMap<VertexId, Vec<VertexId>> = FxHashMap::default();
    for &(s, d) in edges {
        adj.entry(s).or_default().push(d);
    }
    let mut ranks: FxHashMap<VertexId, f64> = adj.keys().map(|&v| (v, 1.0)).collect();
    for _ in 0..iterations {
        // Contributions flow from the (adjacency, rank) graph state.
        let mut contribs: FxHashMap<VertexId, f64> = FxHashMap::default();
        for (v, dests) in &adj {
            if let Some(r) = ranks.get(v) {
                let share = r / dests.len() as f64;
                for d in dests {
                    *contribs.entry(*d).or_insert(0.0) += share;
                }
            }
        }
        // Narrow vertex update over the previous rank keys.
        for (v, r) in ranks.iter_mut() {
            *r = (1.0 - damping) + damping * contribs.get(v).copied().unwrap_or(0.0);
        }
    }
    let mut out: Vec<(VertexId, f64)> = ranks.into_iter().collect();
    out.sort_by_key(|(v, _)| *v);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::partition_edges;
    use blaze_dataflow::runner::LocalRunner;

    fn small_cfg() -> PageRankConfig {
        PageRankConfig {
            graph: GraphGenConfig {
                vertices: 200,
                avg_degree: 4,
                partitions: 4,
                ..Default::default()
            },
            iterations: 5,
            damping: 0.85,
        }
    }

    #[test]
    fn matches_reference_implementation() {
        let cfg = small_cfg();
        let ctx = Context::new(LocalRunner::new());
        let mut got = run(&ctx, &cfg).unwrap().ranks;
        got.sort_by_key(|(v, _)| *v);

        let all_edges: Vec<(VertexId, VertexId)> = (0..cfg.graph.partitions)
            .flat_map(|p| partition_edges(&cfg.graph, p))
            .map(|e| e.by_src())
            .collect();
        let want = reference(&all_edges, cfg.iterations, cfg.damping);
        assert_eq!(got.len(), want.len());
        for ((gv, gr), (wv, wr)) in got.iter().zip(&want) {
            assert_eq!(gv, wv);
            assert!((gr - wr).abs() < 1e-9, "rank mismatch at {gv}: {gr} vs {wr}");
        }
    }

    #[test]
    fn rank_mass_is_conserved_approximately() {
        // With every vertex on the ring (in-degree >= 1), total rank stays
        // near the vertex count.
        let cfg = small_cfg();
        let ctx = Context::new(LocalRunner::new());
        let ranks = run(&ctx, &cfg).unwrap().ranks;
        let total: f64 = ranks.iter().map(|(_, r)| r).sum();
        let n = cfg.graph.vertices as f64;
        assert!((total - n).abs() / n < 0.05, "total rank {total} vs n {n}");
    }

    #[test]
    fn high_in_degree_vertices_rank_higher() {
        let cfg = small_cfg();
        let ctx = Context::new(LocalRunner::new());
        let ranks = run(&ctx, &cfg).unwrap().ranks;
        let rank_of = |v: VertexId| ranks.iter().find(|(x, _)| *x == v).map(|(_, r)| *r);
        // Vertex 0 attracts skewed edges; a high-id vertex does not.
        let head = rank_of(0).unwrap();
        let tail = rank_of(cfg.graph.vertices - 2).unwrap_or(1.0);
        assert!(head > tail, "head {head} should outrank tail {tail}");
    }

    #[test]
    fn preprocessing_plus_one_job_per_iteration_plus_final_collect() {
        let cfg = small_cfg();
        let ctx = Context::new(LocalRunner::new());
        let _ = run(&ctx, &cfg).unwrap();
        // Job 0 materializes the graph (Fig. 1's pre-processing), then one
        // job per iteration, then the final collect.
        assert_eq!(ctx.jobs_submitted() as usize, 1 + cfg.iterations + 1);
    }
}
