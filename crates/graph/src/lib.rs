//! Graph processing on the Blaze dataflow API.
//!
//! Provides the two graph workloads of the paper's evaluation (§7.1) plus
//! the substrate they run on:
//!
//! - [`datagen`] — deterministic power-law graph generation (the SparkBench
//!   synthetic-graph stand-in);
//! - [`pregel`] — a GraphX-style bulk-synchronous vertex-program loop;
//! - [`pagerank`] — PageRank in the classic Spark formulation (paper Fig. 1),
//!   one job per iteration, with the GraphX-style cache/unpersist pattern;
//! - [`cc`] — ConnectedComponents as a Pregel min-label propagation;
//! - [`svdpp`] — SVD++-style matrix factorization with implicit feedback on
//!   the user-item bipartite graph (the paper's recommendation workload);
//! - [`graph`] — a GraphX-style property [`Graph`] wrapper for building new
//!   graph computations.

#![warn(missing_docs)]

pub mod cc;
pub mod datagen;
pub mod graph;
pub mod pagerank;
pub mod pregel;
pub mod svdpp;
pub mod types;

pub use graph::Graph;
pub use types::{Edge, VertexId};
