//! A GraphX-style bulk-synchronous vertex-program loop.
//!
//! Each superstep: messages flow along edges from source vertex state,
//! merge per destination, and update vertex state; the loop stops when no
//! vertex changes (or a superstep budget runs out). Every superstep submits
//! one job (the convergence check is an action), giving the same
//! job-per-iteration structure the paper's workloads exhibit. Vertex states
//! are cached per superstep and the previous superstep's states unpersisted,
//! like GraphX's internal caching.

use crate::types::VertexId;
use blaze_common::error::Result;
use blaze_dataflow::{Context, Dataset};
use std::sync::Arc;

/// Outcome of a Pregel run.
pub struct PregelResult<V: blaze_dataflow::Data> {
    /// Final vertex states.
    pub vertices: Vec<(VertexId, V)>,
    /// Supersteps executed (including the final no-change one).
    pub supersteps: usize,
}

/// Runs a vertex program until convergence.
///
/// - `vertices`: initial vertex states (will be hash-partitioned);
/// - `edges`: directed `(src, dst)` pairs; messages flow src -> dst only, so
///   pass both directions for undirected semantics;
/// - `send(src_state, dst) -> Option<M>`: message along one edge;
/// - `merge(a, b) -> M`: commutative/associative message combiner;
/// - `apply(state, msg) -> (new_state, changed)`: vertex update.
#[allow(clippy::too_many_arguments)]
pub fn run_pregel<V, M>(
    _ctx: &Context,
    vertices: Dataset<(VertexId, V)>,
    edges: Dataset<(VertexId, VertexId)>,
    num_partitions: usize,
    max_supersteps: usize,
    send: impl Fn(&V, VertexId) -> Option<M> + Send + Sync + 'static,
    merge: impl Fn(&M, &M) -> M + Send + Sync + 'static,
    apply: impl Fn(&V, &M) -> (V, bool) + Send + Sync + 'static,
) -> Result<PregelResult<V>>
where
    V: blaze_dataflow::Data,
    M: blaze_dataflow::Data,
{
    let send = Arc::new(send);
    let apply = Arc::new(apply);
    let merge = Arc::new(merge);

    let edges = edges.partition_by(num_partitions).named("pregel_edges");
    edges.cache();
    let mut vertices = vertices.partition_by(num_partitions).named("pregel_v0");
    vertices.cache();
    let mut prev: Option<Dataset<(VertexId, V)>> = None;

    let mut supersteps = 0;
    let mut prev_triplets: Option<Dataset<(VertexId, (VertexId, V))>> = None;
    for _ in 0..max_supersteps {
        supersteps += 1;
        let send_f = Arc::clone(&send);
        // The graph-sized triplet view of this superstep. GraphX caches the
        // materialized graph every superstep; as the paper observes (§3.1),
        // such annotated data may see little or no reuse — baselines store
        // it anyway, Blaze decides per partition.
        let triplets =
            edges.join(&vertices, num_partitions).named("pregel_triplets").with_ser_factor(2.5);
        triplets.cache();
        let messages = triplets
            .flat_map(move |(_src, (dst, state))| send_f(state, *dst).map(|m| (*dst, m)))
            .named("pregel_msgs");
        let merge_f = Arc::clone(&merge);
        let merged = messages.reduce_by_key(num_partitions, move |a, b| merge_f(a, b));
        let apply_f = Arc::clone(&apply);
        let updated = vertices
            .left_outer_join(&merged, num_partitions)
            .map_values(move |(state, msg)| match msg {
                Some(m) => apply_f(state, m),
                None => (state.clone(), false),
            })
            .named("pregel_apply");
        updated.cache();
        // Convergence check: one action (job) per superstep.
        let changed = updated.filter(|(_, (_, c))| *c).count()?;
        let new_vertices = updated.map_values(|(state, _)| state.clone()).named("pregel_v");
        if let Some(old) = prev.take() {
            old.unpersist();
        }
        if let Some(old) = prev_triplets.take() {
            old.unpersist();
        }
        prev = Some(vertices);
        prev_triplets = Some(triplets);
        vertices = new_vertices;
        if changed == 0 {
            break;
        }
    }

    Ok(PregelResult { vertices: vertices.collect()?, supersteps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaze_dataflow::runner::LocalRunner;

    /// Single-source shortest hop-count on a path graph via Pregel.
    #[test]
    fn computes_hop_distance_on_a_path() {
        let ctx = Context::new(LocalRunner::new());
        let n: u64 = 10;
        let vertices = ctx.parallelize(
            (0..n).map(|v| (v, if v == 0 { 0i64 } else { i64::MAX })).collect::<Vec<_>>(),
            2,
        );
        let edges = ctx.parallelize((0..n - 1).map(|v| (v, v + 1)).collect::<Vec<_>>(), 2);
        let result = run_pregel(
            &ctx,
            vertices,
            edges,
            2,
            32,
            |state, _dst| {
                if *state == i64::MAX {
                    None
                } else {
                    Some(state + 1)
                }
            },
            |a, b| *a.min(b),
            |state, msg| {
                if msg < state {
                    (*msg, true)
                } else {
                    (*state, false)
                }
            },
        )
        .unwrap();
        let mut got = result.vertices;
        got.sort_by_key(|(v, _)| *v);
        for (v, d) in got {
            assert_eq!(d, v as i64, "vertex {v} distance");
        }
        // A length-9 path needs 9 propagation steps + 1 quiescent step.
        assert_eq!(result.supersteps, 10);
    }

    #[test]
    fn stops_at_superstep_budget() {
        let ctx = Context::new(LocalRunner::new());
        let vertices = ctx.parallelize(vec![(0u64, 0u64), (1, 0)], 1);
        let edges = ctx.parallelize(vec![(0u64, 1u64), (1, 0)], 1);
        // A program that always reports change never converges.
        let result = run_pregel(
            &ctx,
            vertices,
            edges,
            1,
            3,
            |s, _| Some(*s),
            |a, _| *a,
            |s, _| (*s + 1, true),
        )
        .unwrap();
        assert_eq!(result.supersteps, 3);
    }
}
