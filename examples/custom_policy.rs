//! Plugging a custom cache controller into the engine.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```
//!
//! The engine's `CacheController` trait is the single integration surface
//! for caching, eviction and recovery decisions (the same one the paper's
//! baselines and Blaze use). This example implements a "biggest-first"
//! policy: on memory pressure, evict the largest resident blocks — a
//! size-aware cousin of LRU — and compares it against LRU.

use blaze::common::ids::{BlockId, ExecutorId};
use blaze::common::ByteSize;
use blaze::dataflow::Context;
use blaze::engine::{
    Admission, BlockInfo, CacheController, Cluster, ClusterConfig, CtrlCtx, VictimAction,
};
use blaze::policies::{EvictMode, LruController};

/// Evicts the biggest blocks first, spilling them to disk.
#[derive(Default)]
struct BiggestFirst;

impl CacheController for BiggestFirst {
    fn name(&self) -> String {
        "BiggestFirst".into()
    }

    fn choose_victims(
        &mut self,
        _ctx: &CtrlCtx,
        _exec: ExecutorId,
        needed: ByteSize,
        _incoming: &BlockInfo,
        resident: &[BlockInfo],
    ) -> Vec<(BlockId, VictimAction)> {
        let mut candidates: Vec<(ByteSize, BlockId)> =
            resident.iter().map(|b| (b.bytes, b.id)).collect();
        candidates.sort_by_key(|&(bytes, id)| (std::cmp::Reverse(bytes), id));
        let mut freed = ByteSize::ZERO;
        let mut victims = Vec::new();
        for (bytes, id) in candidates {
            if freed >= needed {
                break;
            }
            freed += bytes;
            victims.push((id, VictimAction::ToDisk));
        }
        victims
    }

    fn on_admission_failure(&mut self, _ctx: &CtrlCtx, _block: &BlockInfo) -> Admission {
        Admission::Disk
    }
}

fn workload(ctx: &Context) {
    // Mixed sizes: a bulky dataset reused every iteration, plus small keyed
    // aggregates that go stale after one iteration. A good policy evicts the
    // stale small blocks; evicting the bulky blocks forfeits their reuse.
    let bulky = ctx.parallelize((0..20_000u64).collect::<Vec<_>>(), 8).map(|x| vec![*x; 4]);
    bulky.cache();
    let mut keyed = ctx.parallelize((0..20_000u64).map(|i| (i % 4_000, i)).collect::<Vec<_>>(), 8);
    for _ in 0..8 {
        keyed = keyed.reduce_by_key(8, |a, b| a + b).map_values(|v| v + 1);
        keyed.cache();
        keyed.count().unwrap();
        bulky.count().unwrap(); // The bulky dataset is reused every round.
    }
}

fn run(name: &str, controller: Box<dyn CacheController>) {
    let cluster = Cluster::new(
        ClusterConfig {
            executors: 2,
            slots_per_executor: 2,
            memory_capacity: ByteSize::from_kib(320),
            ..Default::default()
        },
        controller,
    )
    .expect("valid config");
    let ctx = Context::new(cluster.clone());
    workload(&ctx);
    let m = cluster.metrics();
    println!(
        "{name:14} completion {:>7.3}s | evictions {:>4} | disk I/O {:>7.3}s | mem hits {}",
        m.completion_time.as_secs_f64(),
        m.evictions,
        m.accumulated.disk_io_for_caching().as_secs_f64(),
        m.mem_hits
    );
}

fn main() {
    run("LRU", Box::new(LruController::new(EvictMode::MemDisk)));
    run("BiggestFirst", Box::new(BiggestFirst));
}
