//! Quickstart: run an iterative computation under Blaze's holistic caching.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small simulated cluster, profiles the workload's dependency
//! structure on a sample, then executes ten iterations of a keyed
//! aggregation pipeline under the Blaze cache controller — and under plain
//! MEM_ONLY Spark-style LRU for comparison.

use blaze::common::ByteSize;
use blaze::core::{extract_dependencies, BlazeConfig, BlazeController};
use blaze::dataflow::Context;
use blaze::engine::{CacheController, Cluster, ClusterConfig};
use blaze::policies::{EvictMode, LruController};

/// The workload: ten iterations joining the working state against a bulky
/// reference table. Everything a typical iterative job annotates is
/// annotated — including the per-iteration join result, which is never read
/// again (the unnecessary-caching pattern the paper's §3.1 observes).
fn workload(ctx: &Context, scale: u64) -> blaze::common::Result<()> {
    let keys = 200 * scale;
    let lookup =
        ctx.parallelize((0..keys).map(|i| (i, vec![i; 6])).collect::<Vec<_>>(), 8).partition_by(8);
    lookup.cache();
    let mut data = ctx.parallelize((0..3 * keys).map(|i| (i % keys, i)).collect::<Vec<_>>(), 8);
    for _ in 0..10 {
        let joined = lookup.join(&data, 8);
        joined.cache(); // Annotated, but never reused.
        data = joined
            .map(|(k, (w, v))| (*k, v.wrapping_add(w[0])))
            .reduce_by_key(8, |a, b| a.wrapping_add(*b));
        data.cache();
        data.count()?;
    }
    Ok(())
}

fn run_under(name: &str, controller: Box<dyn CacheController>) {
    let config = ClusterConfig {
        executors: 4,
        slots_per_executor: 2,
        memory_capacity: ByteSize::from_kib(640),
        ..Default::default()
    };
    let cluster = Cluster::new(config, controller).expect("valid config");
    let ctx = Context::new(cluster.clone());
    workload(&ctx, 100).expect("workload runs");
    let m = cluster.metrics();
    println!(
        "{name:24} completion {:>8.3}s | recompute {:>7.3}s | disk I/O {:>7.3}s | evictions {}",
        m.completion_time.as_secs_f64(),
        m.total_recompute_time().as_secs_f64(),
        m.accumulated.disk_io_for_caching().as_secs_f64(),
        m.evictions,
    );
}

fn main() {
    // 1. Dependency extraction on a tiny sample (paper §5.1 ①): same code
    //    path, 1000x less data.
    let profile = extract_dependencies(
        |ctx| {
            let mut data = ctx.parallelize((0..100u64).map(|i| (i % 10, i)).collect::<Vec<_>>(), 8);
            for _ in 0..10 {
                data = data.reduce_by_key(8, |a, b| a + b).map_values(|v| v % 1_000_003);
                data.cache();
                data.count()?;
            }
            Ok(())
        },
        0,
    )
    .expect("profiling succeeds");
    println!(
        "profiled {} jobs, iteration pattern: {:?}\n",
        profile.job_targets.len(),
        profile.pattern
    );

    // 2. Run the real workload under both controllers.
    run_under("Spark (MEM_ONLY, LRU)", Box::new(LruController::new(EvictMode::MemOnly)));
    run_under(
        "Blaze (holistic)",
        Box::new(BlazeController::new(BlazeConfig::full(), Some(profile))),
    );
}
