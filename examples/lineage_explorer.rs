//! Exploring the CostLineage and the potential-recovery-cost model.
//!
//! ```sh
//! cargo run --release --example lineage_explorer
//! ```
//!
//! Profiles a PageRank run, then prints the captured job sequence, the
//! iteration pattern, per-dataset future-reference counts and the Eq. 2-4
//! cost estimates the Blaze controller would base its decisions on.

use blaze::common::ids::BlockId;
use blaze::common::{ByteSize, SimDuration};
use blaze::core::{extract_dependencies, CostModel};
use blaze::engine::HardwareModel;
use blaze::graph::datagen::GraphGenConfig;
use blaze::graph::pagerank::{self, PageRankConfig};

fn main() {
    let cfg = PageRankConfig {
        graph: GraphGenConfig { vertices: 256, avg_degree: 4, partitions: 4, ..Default::default() },
        iterations: 4,
        damping: 0.85,
    };
    let mut profile = extract_dependencies(move |ctx| pagerank::run(ctx, &cfg).map(|_| ()), 0)
        .expect("profiling succeeds");

    println!("captured {} jobs; targets: {:?}", profile.job_targets.len(), profile.job_targets);
    println!("iteration pattern: {:?}\n", profile.pattern);

    // Pretend runtime observed some metrics, then ask the cost model.
    let rdds: Vec<_> = profile.lineage.iter().map(|n| (n.rdd, n.name.clone())).collect();
    for (rdd, _) in &rdds {
        for p in 0..4u32 {
            profile.lineage.record_metrics(
                BlockId::new(*rdd, p),
                ByteSize::from_kib(32 + rdd.raw() as u64),
                SimDuration::from_micros(200 + rdd.raw() as u64 * 10),
            );
        }
    }

    let hw = HardwareModel::default();
    let mut model = CostModel::new(&profile.lineage, &hw, profile.pattern);
    println!(
        "{:<8} {:<18} {:>6} {:>12} {:>12} {:>10}",
        "rdd", "operator", "refs", "cost_d", "cost_r", "prefers"
    );
    let mut sorted = rdds.clone();
    sorted.sort_by_key(|(rdd, _)| *rdd);
    for (rdd, name) in sorted {
        let refs = profile.refs.future_refs(rdd, 0);
        let id = BlockId::new(rdd, 0);
        let cost_d = model.cost_d(id);
        let cost_r = model.cost_r(id);
        println!(
            "{:<8} {:<18} {:>6} {:>12} {:>12} {:>10}",
            rdd.to_string(),
            name,
            refs,
            cost_d.to_string(),
            cost_r.to_string(),
            if model.prefers_disk(id) { "disk" } else { "recompute" },
        );
    }
}
