//! An ML training pipeline (KMeans) on the Blaze stack, showing the
//! domain APIs end to end: synthetic data generation, Lloyd iterations on
//! the dataflow engine, and the resulting cache behaviour.
//!
//! ```sh
//! cargo run --release --example kmeans_pipeline
//! ```

use blaze::common::ByteSize;
use blaze::core::{extract_dependencies, BlazeConfig, BlazeController};
use blaze::dataflow::Context;
use blaze::engine::{Cluster, ClusterConfig};
use blaze::ml::datagen::ClusterGenConfig;
use blaze::ml::kmeans::{self, KMeansConfig};

fn main() {
    let data = ClusterGenConfig {
        points: 20_000,
        dim: 8,
        clusters: 6,
        spread: 0.5,
        partitions: 8,
        seed: 7,
    };
    let cfg = KMeansConfig { data, k: 6, iterations: 12 };

    // Profile the pipeline's structure on a 500-point sample.
    let mut sample = cfg;
    sample.data.points = 500;
    let profile = extract_dependencies(move |ctx| kmeans::run(ctx, &sample).map(|_| ()), 0)
        .expect("profiling succeeds");

    let cluster = Cluster::new(
        ClusterConfig {
            executors: 4,
            slots_per_executor: 2,
            memory_capacity: ByteSize::from_kib(512),
            ..Default::default()
        },
        Box::new(BlazeController::new(BlazeConfig::full(), Some(profile))),
    )
    .expect("valid config");
    let ctx = Context::new(cluster.clone());

    let result = kmeans::run(&ctx, &cfg).expect("training succeeds");
    println!("within-cluster sum of squares per iteration:");
    for (i, wcss) in result.wcss_per_iteration.iter().enumerate() {
        println!("  iter {i:>2}: {wcss:>14.1}");
    }
    println!("\nfitted {} centroids; first: {:?}", result.centroids.len(), {
        let c = &result.centroids[0];
        c.iter().map(|v| (v * 10.0).round() / 10.0).collect::<Vec<_>>()
    });

    let m = cluster.metrics();
    println!(
        "\nsimulated completion {:.3}s | memory hits {} | disk hits {} | evictions {}",
        m.completion_time.as_secs_f64(),
        m.mem_hits,
        m.disk_hits,
        m.evictions
    );
}
