//! PageRank under the six compared systems (a miniature of paper Fig. 9a).
//!
//! ```sh
//! cargo run --release --example pagerank
//! ```

use blaze::workloads::{run_app, App, SystemKind};

fn main() {
    println!("PageRank (30k-vertex power-law graph, 10 iterations)\n");
    let mut rows = Vec::new();
    for system in SystemKind::headline() {
        let out = run_app(App::PageRank, system).expect("run succeeds");
        let m = &out.metrics;
        rows.push((system.label(), m.completion_time.as_secs_f64()));
        println!(
            "{:18} ACT {:>7.3}s | disk I/O {:>7.3}s | recompute {:>7.3}s | disk avg {}",
            system.label(),
            m.completion_time.as_secs_f64(),
            m.accumulated.disk_io_for_caching().as_secs_f64(),
            m.total_recompute_time().as_secs_f64(),
            m.disk_bytes_avg(),
        );
    }
    let blaze = rows.iter().find(|(n, _)| *n == "Blaze").unwrap().1;
    let mem = rows.iter().find(|(n, _)| *n == "Spark (MEM)").unwrap().1;
    let disk = rows.iter().find(|(n, _)| *n == "Spark (MEM+DISK)").unwrap().1;
    println!(
        "\nBlaze speedup: {:.2}x vs MEM_ONLY (paper: 2.52x), {:.2}x vs MEM+DISK (paper: 2.86x)",
        mem / blaze,
        disk / blaze
    );
}
